//===- fuzz/Oracle.cpp ---------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "checks/Driver.h"
#include "context/PolicyRegistry.h"
#include "interp/Interpreter.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "pta/Solver.h"
#include "pta/provenance/Provenance.h"
#include "ptaref/ReferenceAnalysis.h"
#include "taint/Taint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace pt;
using namespace pt::fuzz;

const std::vector<std::pair<std::string, std::string>> &
pt::fuzz::precisionOrderPairs() {
  // The canonical list moved to context/PolicyRegistry so the fallback
  // ladder (pta/Degrade.h) can share it without depending on the fuzz
  // library; this forwarder keeps existing oracle callers working.
  return pt::precisionOrderPairs();
}

namespace {

CiProjection projectConcrete(const ConcreteObservations &Obs) {
  CiProjection P;
  P.VarPointsTo = Obs.VarPointsTo;
  P.CallEdges = Obs.CallEdges;
  P.ReachableMethods = Obs.ReachableMethods;
  P.StaticFieldPointsTo = Obs.StaticFieldPointsTo;
  P.FieldPointsTo = Obs.FieldPointsTo;
  P.MayFailCasts = Obs.FailedCasts;
  return P;
}

CiProjection projectReference(const ReferenceAnalysis &Ref,
                              const Program &Prog) {
  CiProjection P;
  P.VarPointsTo = Ref.ciVarPointsTo();
  P.CallEdges = Ref.ciCallEdges();
  P.ReachableMethods = Ref.ciReachable();
  P.StaticFieldPointsTo = Ref.ciStaticFieldPointsTo();
  P.FieldPointsTo = Ref.ciFieldPointsTo();
  // The may-fail-casts client, recomputed over the reference's var facts.
  for (uint32_t Site = 0; Site < Prog.numCastSites(); ++Site) {
    const CastSite &CS = Prog.castSite(Site);
    for (const auto &[Var, Heap] : P.VarPointsTo) {
      if (Var != CS.From.index())
        continue;
      if (!Prog.isSubtype(Prog.heap(HeapId(Heap)).Type, CS.Target)) {
        P.MayFailCasts.insert(Site);
        break;
      }
    }
  }
  return P;
}

/// Renders one canonical export row for a mismatch message.
std::string renderRow(const std::vector<uint32_t> &Row) {
  std::ostringstream OS;
  OS << "(";
  for (size_t I = 0; I < Row.size(); ++I)
    OS << (I ? " " : "") << Row[I];
  OS << ")";
  return OS.str();
}

/// Exact export comparison (both directions), as in the differential test
/// suite but reporting rather than asserting.  \p LeftSide / \p RightSide
/// name the two engines in the message ("solver" vs "ref", "worklist" vs
/// "summary").
void diffExportsLabeled(const char *Relation, const char *LeftSide,
                        const std::vector<std::vector<uint32_t>> &Left,
                        const char *RightSide,
                        const std::vector<std::vector<uint32_t>> &Right,
                        const std::string &Policy, size_t MaxExamples,
                        std::vector<CiViolation> &Out) {
  if (Left == Right)
    return;
  std::vector<std::vector<uint32_t>> OnlyLeft, OnlyRight;
  std::set_difference(Left.begin(), Left.end(), Right.begin(), Right.end(),
                      std::back_inserter(OnlyLeft));
  std::set_difference(Right.begin(), Right.end(), Left.begin(), Left.end(),
                      std::back_inserter(OnlyRight));
  std::ostringstream OS;
  OS << Relation << ": " << LeftSide << "/" << Policy << " vs " << RightSide
     << "/" << Policy << " exports differ: " << OnlyLeft.size() << " rows "
     << LeftSide << "-only, " << OnlyRight.size() << " rows " << RightSide
     << "-only;";
  for (size_t I = 0; I < OnlyLeft.size() && I < MaxExamples; ++I)
    OS << " " << LeftSide << "-only " << renderRow(OnlyLeft[I]);
  for (size_t I = 0; I < OnlyRight.size() && I < MaxExamples; ++I)
    OS << " " << RightSide << "-only " << renderRow(OnlyRight[I]);
  Out.push_back({Relation, OS.str()});
}

void diffExports(const char *Relation,
                 const std::vector<std::vector<uint32_t>> &Solver,
                 const std::vector<std::vector<uint32_t>> &Ref,
                 const std::string &Policy, size_t MaxExamples,
                 std::vector<CiViolation> &Out) {
  diffExportsLabeled(Relation, "solver", Solver, "ref", Ref, Policy,
                     MaxExamples, Out);
}

/// Ids of the registered Direction::May checkers — the monotone ones.
std::vector<std::string> mayCheckerIds() {
  std::vector<std::string> Out;
  checks::CheckerRegistry &Reg = checks::CheckerRegistry::instance();
  for (const std::string &Id : Reg.ids())
    if (Reg.info(Id)->Dir == checks::Direction::May)
      Out.push_back(Id);
  return Out;
}

/// Report keys ("check|siteKey") of the May checkers over one result.
std::set<std::string> mayCheckerKeys(const AnalysisResult &R,
                                     const std::vector<std::string> &Ids) {
  std::set<std::string> Out;
  checks::LintRun Run = checks::runCheckers(R, Ids);
  for (const checks::Diagnostic &D : Run.Diags)
    Out.insert(D.key());
  return Out;
}

/// A tainted-sink report key: (invocation site, argument, tag index).
using SinkKey = std::tuple<uint32_t, uint32_t, uint32_t>;

std::set<SinkKey> taintedSinkKeys(const AnalysisResult &R) {
  std::set<SinkKey> Out;
  for (const taint::TaintedSink &T : taint::findTaintedSinks(R))
    Out.emplace(T.Site.index(), T.ArgIdx, T.TagIdx);
  return Out;
}

std::string renderSinkKeys(const std::vector<SinkKey> &Keys, size_t Max) {
  std::ostringstream OS;
  for (size_t I = 0; I < Keys.size() && I < Max; ++I)
    OS << " (site " << std::get<0>(Keys[I]) << " arg " << std::get<1>(Keys[I])
       << " tag " << std::get<2>(Keys[I]) << ")";
  return OS.str();
}

/// The sixth oracle axis (OracleOptions::CheckTaint): dynamic taint must
/// be contained in the static tainted-sink report under every policy, and
/// the report must shrink monotonically with precision.
void checkTaintOracle(const Program &Prog, const OracleOptions &Opts,
                      const std::vector<std::string> &Policies,
                      OracleReport &Report, std::set<std::string> &Involved) {
  taint::TaintSpec Spec = taint::syntheticSpec(Prog, Opts.InterpSeed);
  taint::TaintPlan Plan = taint::resolve(Spec, Prog);
  if (Plan.Sources.empty() || Plan.Sinks.empty())
    return; // No source-to-sink flow is expressible; nothing to check.

  // Dynamic leg: shadow taint tags on the ORIGINAL program, driven by the
  // same resolved plan the static instrumentation uses.
  InterpTaintMap Map;
  for (auto [Site, Tag] : Plan.Sources)
    Map.SourceTags[Site.index()] |= 1ULL << Tag;
  for (InvokeId S : Plan.Sanitizers)
    Map.SanitizerSites.insert(S.index());
  for (auto [Site, Arg] : Plan.Sinks)
    Map.SinkArgs.insert({Site.index(), Arg});
  std::set<SinkKey> Dynamic;
  for (uint32_t Run = 0; Run < Opts.InterpRuns; ++Run) {
    InterpOptions IOpts;
    IOpts.Seed = Opts.InterpSeed + Run;
    IOpts.Taint = &Map;
    ConcreteObservations Obs = interpret(Prog, IOpts);
    Dynamic.insert(Obs.TaintedSinkHits.begin(), Obs.TaintedSinkHits.end());
  }

  // Static leg: every policy over the instrumented program.
  std::unique_ptr<Program> Inst = taint::instrument(Prog, Plan);
  std::map<std::string, std::set<SinkKey>> StaticKeys;
  for (const std::string &Name : Policies) {
    auto Policy = createPolicy(Name, *Inst);
    if (!Policy)
      continue; // Unknown names are reported by the main policy loop.
    SolverOptions SOpts;
    SOpts.TimeBudgetMs = Opts.SolverTimeBudgetMs;
    SOpts.Cancel = Opts.Cancel;
    Solver S(*Inst, *Policy, SOpts);
    AnalysisResult R = S.run();
    if (R.Aborted)
      continue; // Truncated fixpoints under-approximate; skip.
    std::set<SinkKey> Keys = taintedSinkKeys(R);

    std::vector<SinkKey> Missed;
    std::set_difference(Dynamic.begin(), Dynamic.end(), Keys.begin(),
                        Keys.end(), std::back_inserter(Missed));
    if (!Missed.empty()) {
      std::ostringstream OS;
      OS << "policy " << Name << " misses " << Missed.size()
         << " dynamically tainted sink(s):"
         << renderSinkKeys(Missed, Opts.MaxViolationsPerCheck);
      Report.Violations.push_back({"TaintSoundness", OS.str()});
      Involved.insert(Name);
    }

    // Engine parity: the summary engine must report the same sinks.
    if (Opts.CheckSummary) {
      auto SumPolicy = createPolicy(Name, *Inst);
      SolverOptions SumOpts = SOpts;
      SumOpts.Engine = SolverEngine::Summary;
      AnalysisResult SumR = solveProgram(*Inst, *SumPolicy, SumOpts);
      if (!SumR.Aborted && taintedSinkKeys(SumR) != Keys) {
        Report.Violations.push_back(
            {"TaintEngineParity",
             "worklist and summary tainted-sink reports differ under " +
                 Name});
        Involved.insert(Name);
      }
    }

    StaticKeys.emplace(Name, std::move(Keys));
  }

  // HPT007 monotonicity: more context precision must never introduce a
  // tainted-sink report.
  for (const auto &[Fine, Coarse] : pt::precisionOrderPairs()) {
    auto FIt = StaticKeys.find(Fine);
    auto CIt = StaticKeys.find(Coarse);
    if (FIt == StaticKeys.end() || CIt == StaticKeys.end())
      continue;
    std::vector<SinkKey> Introduced;
    std::set_difference(FIt->second.begin(), FIt->second.end(),
                        CIt->second.begin(), CIt->second.end(),
                        std::back_inserter(Introduced));
    if (Introduced.empty())
      continue;
    std::ostringstream OS;
    OS << "refined policy " << Fine << " reports " << Introduced.size()
       << " tainted sink(s) that " << Coarse << " proves safe:"
       << renderSinkKeys(Introduced, Opts.MaxViolationsPerCheck);
    Report.Violations.push_back({"TaintMonotonicity", OS.str()});
    Involved.insert(Fine);
    Involved.insert(Coarse);
  }
}

} // namespace

OracleReport pt::fuzz::checkProgram(const Program &Prog,
                                    const OracleOptions &Opts) {
  OracleReport Report;
  const std::vector<std::string> &Policies =
      Opts.Policies.empty() ? paperPolicyNames() : Opts.Policies;

  // --- Concrete runs (soundness oracle's ground truth) ---
  ConcreteObservations Merged;
  for (uint32_t Run = 0; Run < Opts.InterpRuns; ++Run) {
    InterpOptions IOpts;
    IOpts.Seed = Opts.InterpSeed + Run;
    ConcreteObservations Obs = interpret(Prog, IOpts);
    Merged.VarPointsTo.insert(Obs.VarPointsTo.begin(), Obs.VarPointsTo.end());
    Merged.CallEdges.insert(Obs.CallEdges.begin(), Obs.CallEdges.end());
    Merged.ReachableMethods.insert(Obs.ReachableMethods.begin(),
                                   Obs.ReachableMethods.end());
    Merged.FailedCasts.insert(Obs.FailedCasts.begin(), Obs.FailedCasts.end());
    Merged.StaticFieldPointsTo.insert(Obs.StaticFieldPointsTo.begin(),
                                      Obs.StaticFieldPointsTo.end());
    Merged.FieldPointsTo.insert(Obs.FieldPointsTo.begin(),
                                Obs.FieldPointsTo.end());
  }
  CiProjection Concrete = projectConcrete(Merged);
  Report.ConcreteFacts = Concrete.totalFacts();

  // --- Solver runs, one per policy ---
  std::map<std::string, CiProjection> Projections;
  std::map<std::string, std::set<std::string>> CheckerReports;
  std::vector<std::string> MayIds =
      Opts.CheckCheckers ? mayCheckerIds() : std::vector<std::string>();
  std::set<std::string> Involved;
  // Wraps diffContainment so every failed check records which solver
  // policies were implicated (labels like "interp" are not policies).
  auto Check = [&](const CiProjection &Fine, const CiProjection &Coarse,
                   const std::string &FineLabel, const std::string &CoarseLabel,
                   std::initializer_list<std::string> ImplicatedPolicies) {
    size_t Before = Report.Violations.size();
    diffContainment(Fine, Coarse, Prog, FineLabel, CoarseLabel,
                    Report.Violations, Opts.MaxViolationsPerCheck);
    if (Report.Violations.size() > Before)
      Involved.insert(ImplicatedPolicies.begin(), ImplicatedPolicies.end());
  };
  for (const std::string &Name : Policies) {
    auto Policy = createPolicy(Name, Prog);
    if (!Policy) {
      Report.Violations.push_back(
          {"Setup", "unknown policy name '" + Name + "'"});
      continue;
    }
    SolverOptions SOpts;
    SOpts.TimeBudgetMs = Opts.SolverTimeBudgetMs;
    SOpts.Cancel = Opts.Cancel;
    // Fifth axis: record every derivation and replay a sample through the
    // rule checker below.  Hooks never influence solving, so the primary
    // run can carry the recorder.
    prov::Recorder ProvRec;
    if (Opts.CheckProvenance && HYBRIDPT_PROVENANCE_ENABLED)
      SOpts.Prov = &ProvRec;
    Solver S(Prog, *Policy, SOpts);
    AnalysisResult R = S.run();
    if (R.Aborted) {
      Report.AbortedPolicies.push_back(Name);
      continue; // Budget-truncated results under-approximate; skip checks.
    }
    CiProjection Proj = ciProject(R);

    // Soundness: concrete ⊆ abstract, relation by relation.
    Check(Concrete, Proj, "interp", Name, {Name});

    if (SOpts.Prov) {
      prov::ValidationResult VR = prov::validateSampledSteps(
          ProvRec, R, Policy.get(), Opts.ProvenanceStride);
      if (!VR.Ok) {
        Report.Violations.push_back(
            {"Provenance", "worklist/" + Name + ": " + VR.Error +
                               " (after " + std::to_string(VR.CheckedSteps) +
                               " checked steps)"});
        Involved.insert(Name);
      }
    }

    if (Opts.FullReferenceDiff) {
      auto RefPolicy = createPolicy(Name, Prog);
      ReferenceAnalysis Ref(Prog, *RefPolicy);
      if (Ref.run()) {
        size_t Before = Report.Violations.size();
        diffExports("VarPointsTo", R.exportVarPointsTo(),
                    Ref.exportVarPointsTo(), Name,
                    Opts.MaxViolationsPerCheck, Report.Violations);
        diffExports("CallGraph", R.exportCallGraph(), Ref.exportCallGraph(),
                    Name, Opts.MaxViolationsPerCheck, Report.Violations);
        diffExports("FldPointsTo", R.exportFieldPointsTo(),
                    Ref.exportFieldPointsTo(), Name,
                    Opts.MaxViolationsPerCheck, Report.Violations);
        diffExports("Reachable", R.exportReachable(), Ref.exportReachable(),
                    Name, Opts.MaxViolationsPerCheck, Report.Violations);
        diffExports("StaticFldPointsTo", R.exportStaticFieldPointsTo(),
                    Ref.exportStaticFieldPointsTo(), Name,
                    Opts.MaxViolationsPerCheck, Report.Violations);
        diffExports("MethodThrows", R.exportThrowPointsTo(),
                    Ref.exportThrowPointsTo(), Name,
                    Opts.MaxViolationsPerCheck, Report.Violations);
        if (Report.Violations.size() > Before)
          Involved.insert(Name);
      }
    }

    // Fourth comparison axis: the compositional summary engine
    // (pta/summary) solves the same monotone constraint system, whose
    // least fixpoint is unique, so its canonical exports must match the
    // worklist engine's bit for bit under every policy.  The summary run
    // gets its own fresh policy (context ids are interning-order-relative,
    // and exports re-encode them through the policy's tables — the policy
    // must outlive the result).
    if (Opts.CheckSummary) {
      auto SumPolicy = createPolicy(Name, Prog);
      SolverOptions SumOpts = SOpts;
      SumOpts.Engine = SolverEngine::Summary;
      // Its own arena: fact payloads embed per-run dense object ids, and
      // parity means "valid under either engine", not "same steps".
      prov::Recorder SumProvRec;
      SumOpts.Prov = SOpts.Prov ? &SumProvRec : nullptr;
      AnalysisResult SumR = solveProgram(Prog, *SumPolicy, SumOpts);
      // A budget/cancel abort in only one engine is a timing artifact,
      // not a divergence; comparing a truncated fixpoint would be noise.
      if (!SumR.Aborted) {
        size_t Before = Report.Violations.size();
        diffExportsLabeled("VarPointsTo", "worklist", R.exportVarPointsTo(),
                           "summary", SumR.exportVarPointsTo(), Name,
                           Opts.MaxViolationsPerCheck, Report.Violations);
        diffExportsLabeled("CallGraph", "worklist", R.exportCallGraph(),
                           "summary", SumR.exportCallGraph(), Name,
                           Opts.MaxViolationsPerCheck, Report.Violations);
        diffExportsLabeled("FldPointsTo", "worklist", R.exportFieldPointsTo(),
                           "summary", SumR.exportFieldPointsTo(), Name,
                           Opts.MaxViolationsPerCheck, Report.Violations);
        diffExportsLabeled("Reachable", "worklist", R.exportReachable(),
                           "summary", SumR.exportReachable(), Name,
                           Opts.MaxViolationsPerCheck, Report.Violations);
        diffExportsLabeled("StaticFldPointsTo", "worklist",
                           R.exportStaticFieldPointsTo(), "summary",
                           SumR.exportStaticFieldPointsTo(), Name,
                           Opts.MaxViolationsPerCheck, Report.Violations);
        diffExportsLabeled("MethodThrows", "worklist", R.exportThrowPointsTo(),
                           "summary", SumR.exportThrowPointsTo(), Name,
                           Opts.MaxViolationsPerCheck, Report.Violations);
        // The projection comparison catches client-level divergence even
        // if a future export grows schedule-dependent fields.
        CiProjection SumProj = ciProject(SumR);
        Check(SumProj, Proj, "summary:" + Name, Name, {Name});
        Check(Proj, SumProj, Name, "summary:" + Name, {Name});
        if (SumOpts.Prov) {
          prov::ValidationResult VR = prov::validateSampledSteps(
              SumProvRec, SumR, SumPolicy.get(), Opts.ProvenanceStride);
          if (!VR.Ok)
            Report.Violations.push_back(
                {"Provenance", "summary/" + Name + ": " + VR.Error +
                                   " (after " +
                                   std::to_string(VR.CheckedSteps) +
                                   " checked steps)"});
        }
        if (Report.Violations.size() > Before)
          Involved.insert(Name);
      }
    }

    if (Opts.CheckCheckers)
      CheckerReports.emplace(Name, mayCheckerKeys(R, MayIds));

    Projections.emplace(Name, std::move(Proj));
  }

  // --- Reference cross-check (context-insensitive leg) ---
  if (Opts.CheckReference) {
    auto InsensPolicy = createPolicy("insens", Prog);
    ReferenceAnalysis Ref(Prog, *InsensPolicy);
    if (Ref.run()) {
      CiProjection RefProj = projectReference(Ref, Prog);
      // Concrete containment holds against the reference too — catches
      // reference-model bugs even when both engines agree.
      Check(Concrete, RefProj, "interp", "ref:insens", {"insens"});
      auto It = Projections.find("insens");
      if (It != Projections.end()) {
        // Exact equality under insens: containment both ways.
        Check(It->second, RefProj, "insens", "ref:insens", {"insens"});
        Check(RefProj, It->second, "ref:insens", "insens", {"insens"});
      }
      // Every policy refines context-insensitivity, so each projection
      // must be contained in the independent engine's coarsest result.
      for (const auto &[Name, Proj] : Projections)
        if (Name != "insens")
          Check(Proj, RefProj, Name, "ref:insens", {Name});
    }
  }

  // --- Precision-ordering invariants between refining pairs ---
  if (Opts.CheckOrdering) {
    for (const auto &[Fine, Coarse] : precisionOrderPairs()) {
      auto FIt = Projections.find(Fine);
      auto CIt = Projections.find(Coarse);
      if (FIt == Projections.end() || CIt == Projections.end())
        continue;
      Check(FIt->second, CIt->second, Fine, Coarse, {Fine, Coarse});
    }
    // Everything refines insens.
    auto InsIt = Projections.find("insens");
    if (InsIt != Projections.end())
      for (const auto &[Name, Proj] : Projections)
        if (Name != "insens")
          Check(Proj, InsIt->second, Name, "insens", {Name, "insens"});
  }

  // --- Checker monotonicity between refining pairs ---
  if (Opts.CheckCheckers) {
    for (const auto &[Fine, Coarse] : precisionOrderPairs()) {
      auto FIt = CheckerReports.find(Fine);
      auto CIt = CheckerReports.find(Coarse);
      if (FIt == CheckerReports.end() || CIt == CheckerReports.end())
        continue;
      std::vector<std::string> Introduced;
      std::set_difference(FIt->second.begin(), FIt->second.end(),
                          CIt->second.begin(), CIt->second.end(),
                          std::back_inserter(Introduced));
      if (Introduced.empty())
        continue;
      std::ostringstream OS;
      OS << "refined policy " << Fine << " reports " << Introduced.size()
         << " may-finding(s) that " << Coarse << " proves safe:";
      for (size_t I = 0;
           I < Introduced.size() && I < Opts.MaxViolationsPerCheck; ++I)
        OS << " " << Introduced[I];
      Report.Violations.push_back({"CheckerMonotonicity", OS.str()});
      Involved.insert(Fine);
      Involved.insert(Coarse);
    }
  }

  // --- Sixth axis: the dynamic taint oracle ---
  if (Opts.CheckTaint)
    checkTaintOracle(Prog, Opts, Policies, Report, Involved);

  Report.InvolvedPolicies.assign(Involved.begin(), Involved.end());
  return Report;
}
