//===- fuzz/Driver.cpp ---------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Driver.h"

#include "ir/Program.h"
#include "irtext/TextFormat.h"
#include "support/Timer.h"
#include "workloads/Fuzzer.h"
#include "workloads/Shrink.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace pt;
using namespace pt::fuzz;

namespace {

/// The seed-corpus shape schedule: cycling through distinct program
/// profiles exercises different rule mixes (tiny programs converge the
/// minimizer fast, call-heavy ones stress MERGE/MERGESTATIC, field-heavy
/// ones stress loads/stores).
FuzzOptions shapeFor(uint32_t Index) {
  FuzzOptions Shape;
  switch (Index % 4) {
  case 0: // Default mix.
    break;
  case 1: // Tiny: a handful of methods, few instructions.
    Shape.Types = 3;
    Shape.Fields = 2;
    Shape.Methods = 5;
    Shape.MaxInstrPerMethod = 4;
    Shape.MaxLocals = 3;
    break;
  case 2: // Call-heavy: many small methods.
    Shape.Methods = 20;
    Shape.MaxInstrPerMethod = 6;
    break;
  case 3: // Field-heavy: deep heap shapes.
    Shape.Fields = 10;
    Shape.MaxInstrPerMethod = 12;
    break;
  }
  return Shape;
}

/// Renders the reproducer file: a commented header plus the program.
std::string renderReproducer(const Program &Prog, uint64_t Seed,
                             const OracleReport &Report,
                             const ShrinkResult &Shrink) {
  std::ostringstream OS;
  OS << "# hybridpt-fuzz reproducer (seed " << Seed << ")\n";
  OS << "# minimized " << Shrink.InstrBefore << " -> " << Shrink.InstrAfter
     << " instructions in " << Shrink.Probes << " probes\n";
  for (size_t I = 0; I < Report.Violations.size() && I < 3; ++I)
    OS << "# violation: " << Report.Violations[I].Detail << "\n";
  OS << "\n" << printProgram(Prog);
  return OS.str();
}

} // namespace

DriverResult pt::fuzz::runFuzz(const DriverOptions &Opts) {
  DriverResult Result;
  Stopwatch Campaign;

  auto BudgetLeft = [&] {
    if (Opts.Cancel && Opts.Cancel->cancelled())
      return false; // ^C / deadline: stop cleanly, keep findings so far.
    return Opts.BudgetMs == 0 ||
           Campaign.elapsedMs() < static_cast<double>(Opts.BudgetMs);
  };

  for (uint32_t Index = 0; Opts.MaxPrograms == 0 || Index < Opts.MaxPrograms;
       ++Index) {
    if (!BudgetLeft())
      break;
    if (Opts.MaxFailures != 0 && Result.Failures >= Opts.MaxFailures)
      break;

    uint64_t Seed = Opts.Seed + Index;
    std::unique_ptr<Program> Prog = fuzzProgram(Seed, shapeFor(Index));

    OracleOptions OOpts;
    OOpts.Policies = Opts.Policies;
    OOpts.InterpSeed = Seed;
    OOpts.SolverTimeBudgetMs = Opts.SolverTimeBudgetMs;
    OOpts.Cancel = Opts.Cancel;
    OOpts.FullReferenceDiff =
        Opts.FullDiffEvery != 0 && Index % Opts.FullDiffEvery == 0;
    OOpts.CheckSummary = Opts.CompareSummary;
    OOpts.CheckProvenance = Opts.CheckProvenance;
    OOpts.CheckTaint = Opts.CheckTaint;

    OracleReport Report = checkProgram(*Prog, OOpts);
    ++Result.ProgramsRun;
    Result.TotalViolations += Report.Violations.size();

    if (Opts.Log && (Index % 50 == 0 || !Report.ok()))
      *Opts.Log << "[fuzz] #" << Index << " seed=" << Seed
                << " concrete=" << Report.ConcreteFacts
                << " violations=" << Report.Violations.size() << "\n";

    if (Report.ok())
      continue;

    ++Result.Failures;
    std::ostringstream Summary;
    Summary << "seed " << Seed << ": " << Report.Violations.size()
            << " violation(s); first: " << Report.Violations.front().Detail;
    Result.FailureSummaries.push_back(Summary.str());
    if (Opts.Log) {
      for (const CiViolation &V : Report.Violations)
        *Opts.Log << "  violation: " << V.Detail << "\n";
    }

    if (!Opts.Minimize)
      continue;

    // Shrink probes re-check only the implicated policies (plus whatever
    // the reference leg needs), without the expensive full differential.
    OracleOptions ProbeOpts = OOpts;
    ProbeOpts.FullReferenceDiff = OOpts.FullReferenceDiff;
    if (!Report.InvolvedPolicies.empty())
      ProbeOpts.Policies = Report.InvolvedPolicies;
    ShrinkResult Shrunk = shrinkProgram(
        *Prog,
        [&](const Program &Cand) { return !checkProgram(Cand, ProbeOpts).ok(); },
        {});
    OracleReport MinReport = checkProgram(*Shrunk.Minimized, ProbeOpts);
    if (Opts.Log)
      *Opts.Log << "  minimized " << Shrunk.InstrBefore << " -> "
                << Shrunk.InstrAfter << " instructions (" << Shrunk.Probes
                << " probes)\n";

    if (!Opts.RegressDir.empty()) {
      std::error_code DirEc;
      std::filesystem::create_directories(Opts.RegressDir, DirEc);
      std::string Path =
          Opts.RegressDir + "/fuzz-seed" + std::to_string(Seed) + ".ptir";
      std::ofstream Out(Path);
      if (Out) {
        Out << renderReproducer(*Shrunk.Minimized, Seed, MinReport, Shrunk);
        Result.ReproducerPaths.push_back(Path);
        if (Opts.Log)
          *Opts.Log << "  reproducer: " << Path << "\n";
      } else if (Opts.Log) {
        *Opts.Log << "  error: cannot write " << Path << "\n";
      }
    }
  }

  return Result;
}
