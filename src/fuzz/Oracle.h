//===- fuzz/Oracle.h - Differential correctness oracles ---------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracles of the differential correctness harness, applied to one
/// program (docs/CORRECTNESS.md):
///
/// 1. **Soundness**: execute the program concretely in the interpreter and
///    require every observed (var, allocation-site) binding, call edge,
///    reached method, static-field binding, field binding, and failed cast
///    to be contained in the solver's result for *every* requested policy —
///    the abstract semantics over-approximates any concrete run.
///
/// 2. **Equivalence / ordering**: cross-check the solver against the
///    independent Datalog reference model (exact equality of the
///    context-insensitive projection under `insens`; containment of every
///    policy's projection in the reference's, since every policy refines
///    context-insensitivity), and check the paper's precision-ordering
///    invariants between refining policy pairs (e.g. U-2obj+H ⊆ 2obj+H):
///    a refined policy reporting a fact — or a may-fail cast — the coarser
///    one lacks is a violation signal.
///
/// 3. **Checker monotonicity**: run the \c Direction::May checkers of
///    src/checks over every policy's result and require, for each refining
///    pair, that the refined policy's report-key set is a subset of the
///    coarser one's — more context precision must never introduce a
///    may-fail cast, a polymorphic call site, or an escaping object.
///
/// All checks reduce to \c pt::diffContainment over \c CiProjection
/// values; any violation is a solver (or reference, or interpreter) bug.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_FUZZ_ORACLE_H
#define HYBRIDPT_FUZZ_ORACLE_H

#include "pta/Projection.h"
#include "support/Cancel.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pt {

class Program;

namespace fuzz {

/// Which checks to run over one program.
struct OracleOptions {
  /// Policies to solve under; empty = the fifteen standard analyses
  /// (Table 1 plus insens).
  std::vector<std::string> Policies;
  /// Interpreter base seed; runs use Seed, Seed+1, ... per repetition.
  uint64_t InterpSeed = 1;
  /// Concrete executions whose observations are unioned (different seeds
  /// explore different instruction orders).
  uint32_t InterpRuns = 2;
  /// Per-policy solver wall-clock budget; 0 = unlimited.  Aborted runs are
  /// under-approximations, so their containment checks are skipped.
  uint64_t SolverTimeBudgetMs = 0;
  /// Cross-check against the Datalog reference model (insens projection
  /// equality plus per-policy containment in it).
  bool CheckReference = true;
  /// Additionally require exact context-sensitive export equality between
  /// solver and reference for every policy (expensive; the driver samples
  /// this every Nth program).
  bool FullReferenceDiff = false;
  /// Check the precision-ordering invariants between refining pairs.
  bool CheckOrdering = true;
  /// Fourth comparison axis: re-solve every non-aborted policy with the
  /// compositional summary engine (pta/summary/SummarySolver.h) and
  /// require bit-identical canonical exports against the worklist run.
  /// Any divergence is a routing bug in the SCC engine (or a
  /// schedule-dependence bug in the worklist engine).
  bool CheckSummary = false;
  /// Check checker monotonicity between refining pairs: the refined policy
  /// must never report a may-fail cast, polymorphic call site, or escaping
  /// object the coarser policy proves safe (src/checks Direction::May
  /// checkers; Definite checkers grow with precision and are exempt).
  bool CheckCheckers = true;
  /// Fifth comparison axis: record derivation provenance during every
  /// solver run and replay a sample of the recorded steps through the
  /// rule-checking validator (prov::validateSampledSteps) with the run's
  /// context policy — every step must re-check against the Figure-2 side
  /// conditions.  With \c CheckSummary the summary engine's derivations
  /// are validated too (parity: valid under either engine).  No-op when
  /// the build compiles provenance out.
  bool CheckProvenance = false;
  /// Sixth axis — the dynamic taint oracle (docs/CORRECTNESS.md): derive
  /// a synthetic taint spec from the program, run the interpreter on the
  /// original program with shadow taint tags, solve the taint-instrumented
  /// program under every policy, and require each dynamically observed
  /// tainted sink (site, argument, tag) to be statically reported by the
  /// tainted-sink client.  Also checks HPT007 monotonicity between
  /// refining policy pairs, and (with \c CheckSummary) key-identical
  /// findings from the summary engine.
  bool CheckTaint = false;
  /// Every Nth recorded step is replayed (1 = all; default samples).
  size_t ProvenanceStride = 3;
  /// Example cap per relation per failed check.
  size_t MaxViolationsPerCheck = 5;
  /// Cooperative cancellation (^C / deadline); nullptr = none.  Cancelled
  /// solver runs are treated like budget aborts: their checks are skipped,
  /// so a mid-campaign ^C never manufactures a spurious failure.
  const CancelToken *Cancel = nullptr;
};

/// Outcome of all checks on one program.
struct OracleReport {
  /// Every violation found, with human-readable details naming the two
  /// sides ("interp", a policy name, or "ref:<policy>").
  std::vector<CiViolation> Violations;
  /// Policies whose solver run aborted on budget (their checks skipped).
  std::vector<std::string> AbortedPolicies;
  /// Policy names implicated in at least one violation (sorted, unique) —
  /// the minimizer re-checks only these to keep probes cheap.
  std::vector<std::string> InvolvedPolicies;
  /// Total concrete facts observed by the interpreter (coverage signal).
  size_t ConcreteFacts = 0;

  bool ok() const { return Violations.empty(); }
};

/// Runs all configured oracles over \p Prog.
OracleReport checkProgram(const Program &Prog, const OracleOptions &Opts = {});

/// The precision-ordering pairs (finer, coarser) asserted by the
/// equivalence oracle.  Forwards to the canonical \c
/// pt::precisionOrderPairs in context/PolicyRegistry.h, which the fallback
/// ladder (pta/Degrade.h) shares; see there for the derivation notes.
const std::vector<std::pair<std::string, std::string>> &precisionOrderPairs();

} // namespace fuzz
} // namespace pt

#endif // HYBRIDPT_FUZZ_ORACLE_H
