//===- taint/Taint.h - Taint as a points-to client --------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spec-driven taint tracking layered on the existing points-to machinery
/// (docs/CHECKS.md "Taint analysis").  Taint is modeled as extra abstract
/// objects, not a second fixpoint:
///
///  * resolve() matches a \c TaintSpec against one program's invocation
///    sites, producing a site-level \c TaintPlan shared by the static
///    instrumentation and the interpreter's dynamic taint oracle.
///
///  * instrument() rebuilds the program with, per source call site and
///    tag, synthetic allocations of *taint types* into the call's return
///    variable: one fresh leaf subtype `TT(tag, U)` of every concrete
///    program type U (so casts and virtual dispatch treat taint objects
///    exactly like the values they shadow) plus one root "tag marker"
///    type covering null-valued taint flow.  Sanitizer calls are rewritten
///    to return through a \c SanitizeInstr barrier, which both engines
///    wire as a cast edge filtered on \c HeapInfo::TaintTag.  Everything
///    downstream — all context policies, the worklist and summary
///    solvers, the Datalog reference model, the fallback ladder, guards,
///    and provenance — applies unchanged.
///
///  * findTaintedSinks() is the client query: sink arguments whose
///    points-to set contains a tainted allocation site.  HPT007 and the
///    bench column both use it.
///
/// Id stability contract of instrument(): type/field/sig/method/invoke/
/// heap ids and cast-site indices of the original program are preserved
/// verbatim (new entities append after them); variable ids are NOT stable
/// — every cross-program comparison keys on (invoke, argIdx, tag), never
/// on variables.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_TAINT_TAINT_H
#define HYBRIDPT_TAINT_TAINT_H

#include "support/Ids.h"
#include "taint/TaintSpec.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pt {

class AnalysisResult;
class Program;

namespace taint {

/// A spec resolved against one program: concrete sites instead of name
/// patterns.  Shared currency of the static injector and the dynamic
/// taint oracle, so the two necessarily agree on what is a source, sink,
/// or sanitizer.
struct TaintPlan {
  /// Distinct tag names, in first-use order; index = tag index.
  std::vector<std::string> Tags;
  /// Source call sites: (site, tag index).  First matching rule wins;
  /// a site matching both source and sanitizer rules is a source.
  std::vector<std::pair<InvokeId, uint32_t>> Sources;
  /// Sanitizer call sites (excluding source sites).
  std::vector<InvokeId> Sanitizers;
  /// Sink positions: (site, argument index).
  std::vector<std::pair<InvokeId, uint32_t>> Sinks;

  bool empty() const {
    return Sources.empty() && Sanitizers.empty() && Sinks.empty();
  }
};

/// Matches \p Spec against \p Prog's invocation sites.  Deterministic:
/// sites are visited in id order, rules in spec order.
TaintPlan resolve(const TaintSpec &Spec, const Program &Prog);

/// Rebuilds \p Prog with the plan's taint instrumentation (see file
/// comment for the object model and the id stability contract).  The
/// result carries the plan's sinks and tag names as
/// \c Program::taintSinks() / \c Program::taintTags().  With an empty
/// plan the rebuild is still performed (useful in tests) and the result
/// is behaviorally identical to the input.
std::unique_ptr<Program> instrument(const Program &Prog,
                                    const TaintPlan &Plan);

/// One tainted sink finding: the points-to set of \c Actual (argument
/// \c ArgIdx of call \c Site) contains \c Witness, an allocation site
/// tagged with tag \c TagIdx.
struct TaintedSink {
  InvokeId Site;
  uint32_t ArgIdx = 0;
  uint32_t TagIdx = 0;
  VarId Actual;
  HeapId Witness;
};

/// The taint client query over a solved result of an instrumented
/// program: every (reachable sink, tag) pair whose argument may hold a
/// tainted object.  Sorted by (site, argIdx, tag); the witness is the
/// lowest tainted heap id in the set.  Empty on uninstrumented programs.
std::vector<TaintedSink> findTaintedSinks(const AnalysisResult &Result);

/// Derives a deterministic synthetic spec from \p Prog's method names
/// (the fuzz harness's 6th axis): a couple of `*::name/arity` sources,
/// sinks, and a sanitizer selected by \p Seed.  Programs with no methods
/// yield an empty spec.
TaintSpec syntheticSpec(const Program &Prog, uint64_t Seed);

} // namespace taint
} // namespace pt

#endif // HYBRIDPT_TAINT_TAINT_H
