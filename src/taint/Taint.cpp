//===- taint/Taint.cpp ------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "taint/Taint.h"

#include "ir/Program.h"
#include "ir/ProgramBuilder.h"
#include "pta/AnalysisResult.h"

#include <algorithm>
#include <cassert>

using namespace pt;
using namespace pt::taint;

namespace {

/// Callee components of one invocation site, for spec matching.  Virtual
/// sites have no owner (matched against any pattern owner — see
/// TaintSpec.h for why).
struct CalleeKey {
  std::string_view Owner; // empty for virtual sites
  std::string_view Name;
  uint32_t Arity = 0;
  bool IsStatic = false;
};

CalleeKey calleeKey(const Program &Prog, const InvokeInfo &I) {
  CalleeKey K;
  K.IsStatic = I.IsStatic;
  if (I.IsStatic) {
    const MethodInfo &Callee = Prog.method(I.Target);
    K.Owner = Prog.text(Prog.type(Callee.Owner).Name);
    K.Name = Prog.text(Callee.Name);
    K.Arity = Prog.sig(Callee.Sig).Arity;
  } else {
    const SigInfo &S = Prog.sig(I.Sig);
    K.Name = Prog.text(S.Name);
    K.Arity = S.Arity;
  }
  return K;
}

bool matches(const SigPattern &P, const CalleeKey &K) {
  if (P.Name != K.Name || P.Arity != K.Arity)
    return false;
  // Static sites resolve the callee, so the owner is checkable; virtual
  // sites match on the dispatch signature alone (the receiver's type is
  // what the analysis is computing).
  if (K.IsStatic && P.Owner != "*" && P.Owner != K.Owner)
    return false;
  return true;
}

/// splitmix64 — the deterministic RNG behind syntheticSpec.
struct Rng {
  uint64_t X;
  explicit Rng(uint64_t Seed) : X(Seed) {}
  uint64_t next() {
    X += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }
};

} // namespace

TaintPlan pt::taint::resolve(const TaintSpec &Spec, const Program &Prog) {
  TaintPlan Plan;

  // Tag indices come from the spec alone (appearance order), so the same
  // spec yields the same tag numbering on every program — the fuzz oracle
  // compares (site, arg, tag) keys across the original and instrumented
  // programs and relies on this.
  auto tagIndex = [&Plan](const std::string &Tag) -> uint32_t {
    for (uint32_t I = 0; I < Plan.Tags.size(); ++I)
      if (Plan.Tags[I] == Tag)
        return I;
    Plan.Tags.push_back(Tag);
    return static_cast<uint32_t>(Plan.Tags.size() - 1);
  };
  std::vector<uint32_t> SourceTag(Spec.Sources.size());
  for (size_t R = 0; R < Spec.Sources.size(); ++R)
    SourceTag[R] = tagIndex(Spec.Sources[R].Tag);

  for (uint32_t Idx = 0; Idx < Prog.numInvokes(); ++Idx) {
    InvokeId Site(Idx);
    CalleeKey K = calleeKey(Prog, Prog.invoke(Site));

    // A site matching both source and sanitizer rules is a source: the
    // first matching source rule decides its tag.
    bool IsSource = false;
    for (size_t R = 0; R < Spec.Sources.size(); ++R) {
      if (!matches(Spec.Sources[R].Pattern, K))
        continue;
      // Parsing rejects > 64 distinct tags; keep the invariant even on
      // hand-built specs so the interpreter's 64-bit shadow mask holds.
      if (SourceTag[R] < 64) {
        Plan.Sources.push_back({Site, SourceTag[R]});
        IsSource = true;
      }
      break;
    }
    if (!IsSource)
      for (const SanitizeRule &R : Spec.Sanitizers)
        if (matches(R.Pattern, K)) {
          Plan.Sanitizers.push_back(Site);
          break;
        }

    // Sink rules are independent of the above (they constrain arguments,
    // not the return value); several may hit distinct argument positions.
    for (const SinkRule &R : Spec.Sinks) {
      if (R.ArgIdx >= K.Arity || !matches(R.Pattern, K))
        continue;
      std::pair<InvokeId, uint32_t> Key{Site, R.ArgIdx};
      if (std::find(Plan.Sinks.begin(), Plan.Sinks.end(), Key) ==
          Plan.Sinks.end())
        Plan.Sinks.push_back(Key);
    }
  }
  return Plan;
}

std::unique_ptr<Program> pt::taint::instrument(const Program &Prog,
                                               const TaintPlan &Plan) {
  ProgramBuilder B;

  // The replay below keeps every global id space of the original program
  // intact by re-creating entities in table order: types, fields, and
  // signatures first, then methods (variable ids are NOT preserved — the
  // old->new map bridges them), then allocations sorted by heap id, casts
  // by site index, and invocations in global id order.  Per-method
  // relative instruction order is preserved automatically because each
  // method's entries form an ascending subsequence of the global order.
  // All taint entities append strictly after the originals.

  const size_t OrigTypes = Prog.numTypes();
  for (uint32_t I = 0; I < OrigTypes; ++I) {
    const TypeInfo &T = Prog.type(TypeId(I));
    B.addType(Prog.text(T.Name), T.Super, T.IsAbstract, T.DeclLine);
  }
  for (uint32_t I = 0; I < Prog.numFields(); ++I) {
    const FieldInfo &F = Prog.field(FieldId(I));
    if (F.IsStatic)
      B.addStaticField(F.Owner, Prog.text(F.Name));
    else
      B.addField(F.Owner, Prog.text(F.Name));
  }
  for (uint32_t I = 0; I < Prog.numSigs(); ++I) {
    const SigInfo &S = Prog.sig(SigId(I));
    B.getSig(Prog.text(S.Name), S.Arity);
  }

  std::vector<VarId> VarMap(Prog.numVars());
  for (uint32_t I = 0; I < Prog.numMethods(); ++I) {
    MethodId Old(I);
    const MethodInfo &M = Prog.method(Old);
    MethodId New = B.addMethod(M.Owner, Prog.text(M.Name),
                               Prog.sig(M.Sig).Arity, M.IsStatic, M.DeclLine);
    assert(New == Old && "method ids must replay stably");
    if (M.This.isValid())
      VarMap[M.This.index()] = B.thisVar(New);
    for (uint32_t F = 0; F < M.Formals.size(); ++F)
      VarMap[M.Formals[F].index()] = B.formal(New, F);
    for (VarId L : M.Locals) {
      if (VarMap[L.index()].isValid())
        continue; // this / formal, mapped above
      VarMap[L.index()] = B.addLocal(New, Prog.text(Prog.var(L).Name));
    }
    if (M.Return.isValid())
      B.setReturn(New, VarMap[M.Return.index()]);
  }

  // Allocations: one AllocInstr per heap id; replay in heap-id order.
  std::vector<const AllocInstr *> AllocOf(Prog.numHeaps(), nullptr);
  for (uint32_t I = 0; I < Prog.numMethods(); ++I)
    for (const AllocInstr &A : Prog.method(MethodId(I)).Allocs)
      AllocOf[A.Heap.index()] = &A;
  for (uint32_t H = 0; H < Prog.numHeaps(); ++H) {
    const AllocInstr *A = AllocOf[H];
    assert(A && "every heap has exactly one allocation site");
    const HeapInfo &Info = Prog.heap(HeapId(H));
    HeapId NewH =
        B.addAlloc(Info.InMethod, VarMap[A->Var.index()], Info.Type, A->Line);
    assert(NewH == HeapId(H) && "heap ids must replay stably");
    (void)NewH;
  }

  for (uint32_t S = 0; S < Prog.numCastSites(); ++S) {
    const CastSite &CS = Prog.castSite(S);
    uint32_t NewS = B.addCast(CS.InMethod, VarMap[CS.To.index()],
                              VarMap[CS.From.index()], CS.Target, CS.Line);
    assert(NewS == S && "cast sites must replay stably");
    (void)NewS;
  }

  // Invocations, with the sanitizer rewrite: a sanitizer call returns into
  // a fresh temporary, and a sanitize barrier moves the clean objects on
  // to the original return variable.
  std::vector<char> SanitizerAt(Prog.numInvokes(), 0);
  for (InvokeId S : Plan.Sanitizers)
    SanitizerAt[S.index()] = 1;
  for (uint32_t Idx = 0; Idx < Prog.numInvokes(); ++Idx) {
    const InvokeInfo &I = Prog.invoke(InvokeId(Idx));
    std::vector<VarId> Actuals;
    Actuals.reserve(I.Actuals.size());
    for (VarId A : I.Actuals)
      Actuals.push_back(VarMap[A.index()]);
    VarId RetTo =
        I.RetTo.isValid() ? VarMap[I.RetTo.index()] : VarId::invalid();
    VarId SanTmp = VarId::invalid();
    if (SanitizerAt[Idx] && RetTo.isValid()) {
      SanTmp = B.addLocal(I.InMethod, "$san" + std::to_string(Idx));
      std::swap(RetTo, SanTmp); // call returns into the temporary
    }
    InvokeId New =
        I.IsStatic
            ? B.addSCall(I.InMethod, I.Target, std::move(Actuals), RetTo,
                         I.Line)
            : B.addVCall(I.InMethod, VarMap[I.Base.index()], I.Sig,
                         std::move(Actuals), RetTo, I.Line);
    assert(New == InvokeId(Idx) && "invoke ids must replay stably");
    (void)New;
    if (SanTmp.isValid())
      B.addSanitize(I.InMethod, SanTmp, RetTo, I.Line);
  }

  // Remaining per-method instructions carry no global ids.
  for (uint32_t I = 0; I < Prog.numMethods(); ++I) {
    MethodId M(I);
    const MethodInfo &Body = Prog.method(M);
    auto V = [&](VarId Old) { return VarMap[Old.index()]; };
    for (const MoveInstr &X : Body.Moves)
      B.addMove(M, V(X.To), V(X.From), X.Line);
    for (const LoadInstr &X : Body.Loads)
      B.addLoad(M, V(X.To), V(X.Base), X.Fld, X.Line);
    for (const StoreInstr &X : Body.Stores)
      B.addStore(M, V(X.Base), X.Fld, V(X.From), X.Line);
    for (const SanitizeInstr &X : Body.Sanitizes)
      B.addSanitize(M, V(X.To), V(X.From), X.Line);
    for (const SLoadInstr &X : Body.SLoads)
      B.addSLoad(M, V(X.To), X.Fld, X.Line);
    for (const SStoreInstr &X : Body.SStores)
      B.addSStore(M, X.Fld, V(X.From), X.Line);
    for (const ThrowInstr &X : Body.Throws)
      B.addThrow(M, V(X.V), X.Line);
    for (const HandlerInfo &X : Body.Handlers)
      B.addHandlerTo(M, X.CatchType, V(X.Var), X.Line);
  }
  for (MethodId E : Prog.entryPoints())
    B.addEntryPoint(E);
  B.setSourceName(Prog.sourceName());

  // --- Taint entities, appended after the full original program ---

  for (const std::string &Tag : Plan.Tags)
    B.addTaintTag(Tag);

  // Per tag: one root "marker" type (its objects match no program type,
  // covering taint that travels as an otherwise-null value) and one leaf
  // subtype of every concrete original type U, so a taint object passes
  // exactly the casts and dispatches a U-object would.
  auto freshTypeName = [&B](std::string Name) {
    while (B.findType(Name).isValid())
      Name += "$";
    return Name;
  };
  std::vector<TypeId> RootOf(Plan.Tags.size());
  std::vector<std::vector<TypeId>> LeavesOf(Plan.Tags.size());
  for (uint32_t T = 0; T < Plan.Tags.size(); ++T) {
    const std::string Base = Plan.Tags[T] + "$taint";
    RootOf[T] = B.addType(freshTypeName(Base));
    for (uint32_t U = 0; U < OrigTypes; ++U) {
      const TypeInfo &Ty = Prog.type(TypeId(U));
      if (Ty.IsAbstract)
        continue;
      LeavesOf[T].push_back(B.addType(
          freshTypeName(Base + "$" + Prog.text(Ty.Name)), TypeId(U)));
    }
  }

  // Source call sites: bind one tainted object of each taint type into the
  // call's return variable.  Sites that discard the return value have
  // nothing to taint.
  for (auto [Site, T] : Plan.Sources) {
    const InvokeInfo &I = Prog.invoke(Site);
    if (!I.RetTo.isValid())
      continue;
    VarId Ret = VarMap[I.RetTo.index()];
    HeapId H = B.addAlloc(I.InMethod, Ret, RootOf[T], I.Line);
    B.setHeapTaintTag(H, T + 1);
    for (TypeId Leaf : LeavesOf[T]) {
      H = B.addAlloc(I.InMethod, Ret, Leaf, I.Line);
      B.setHeapTaintTag(H, T + 1);
    }
  }

  for (auto [Site, ArgIdx] : Plan.Sinks)
    B.addTaintSink(Site, ArgIdx);

  return B.build();
}

std::vector<TaintedSink>
pt::taint::findTaintedSinks(const AnalysisResult &Result) {
  const Program &Prog = Result.program();
  std::vector<TaintedSink> Out;
  if (Prog.taintSinks().empty())
    return Out;

  std::vector<char> Reach(Prog.numMethods(), 0);
  for (MethodId M : Result.reachableMethods())
    Reach[M.index()] = 1;
  const std::vector<std::vector<uint32_t>> PtByVar = Result.pointsToByVar();
  const size_t NumTags = Prog.taintTags().size();

  for (const Program::TaintSink &S : Prog.taintSinks()) {
    const InvokeInfo &I = Prog.invoke(S.Site);
    if (!Reach[I.InMethod.index()])
      continue;
    VarId Actual = I.Actuals[S.ArgIdx];
    // Heap indices are sorted ascending, so the first hit per tag is the
    // lowest-id witness.
    std::vector<HeapId> Witness(NumTags, HeapId::invalid());
    for (uint32_t H : PtByVar[Actual.index()]) {
      uint32_t Tag = Prog.heap(HeapId(H)).TaintTag;
      if (Tag != 0 && !Witness[Tag - 1].isValid())
        Witness[Tag - 1] = HeapId(H);
    }
    for (uint32_t T = 0; T < NumTags; ++T)
      if (Witness[T].isValid())
        Out.push_back({S.Site, S.ArgIdx, T, Actual, Witness[T]});
  }

  std::sort(Out.begin(), Out.end(), [](const TaintedSink &A,
                                       const TaintedSink &B) {
    return std::tie(A.Site, A.ArgIdx, A.TagIdx) <
           std::tie(B.Site, B.ArgIdx, B.TagIdx);
  });
  return Out;
}

TaintSpec pt::taint::syntheticSpec(const Program &Prog, uint64_t Seed) {
  TaintSpec Spec;

  // Candidate (name, arity) signatures, deduplicated in method-id order so
  // the pick below is deterministic for a given program and seed.
  std::vector<std::pair<std::string, uint32_t>> Cands;
  for (uint32_t I = 0; I < Prog.numMethods(); ++I) {
    const MethodInfo &M = Prog.method(MethodId(I));
    std::pair<std::string, uint32_t> Key{Prog.text(M.Name),
                                         Prog.sig(M.Sig).Arity};
    if (std::find(Cands.begin(), Cands.end(), Key) == Cands.end())
      Cands.push_back(std::move(Key));
  }
  if (Cands.empty())
    return Spec;
  std::vector<size_t> WithArgs;
  for (size_t I = 0; I < Cands.size(); ++I)
    if (Cands[I].second > 0)
      WithArgs.push_back(I);

  Rng R(Seed);
  auto pattern = [&Cands](size_t I) {
    return SigPattern{"*", Cands[I].first, Cands[I].second};
  };
  const uint32_t NumSources = 1 + R.next() % 2;
  for (uint32_t S = 0; S < NumSources; ++S)
    Spec.Sources.push_back(
        {pattern(R.next() % Cands.size()), "t" + std::to_string(S)});
  if (!WithArgs.empty()) {
    const uint32_t NumSinks = 1 + R.next() % 2;
    for (uint32_t S = 0; S < NumSinks; ++S) {
      size_t C = WithArgs[R.next() % WithArgs.size()];
      Spec.Sinks.push_back(
          {pattern(C), static_cast<uint32_t>(R.next() % Cands[C].second)});
    }
  }
  Spec.Sanitizers.push_back({pattern(R.next() % Cands.size())});
  return Spec;
}
