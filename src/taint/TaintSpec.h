//===- taint/TaintSpec.h - Taint specification format -----------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textual taint specification consumed by the taint engine
/// (docs/CHECKS.md "Taint analysis").  A spec names call signatures that
/// act as taint sources, sinks, and sanitizers; taint::resolve matches it
/// against a concrete program's invocation sites.
///
/// Grammar (line oriented; `#` starts a comment; tokens are
/// whitespace-separated):
///
///   spec     := rule*
///   rule     := "source" pattern "tag=" NAME
///             | "sink" pattern "arg=" N
///             | "sanitize" pattern
///   pattern  := (OWNER | "*") "::" NAME "/" ARITY
///
/// OWNER is a class name (`*` matches any owner).  Static call sites match
/// a pattern when the resolved callee's owner, simple name, and arity
/// match.  Virtual call sites match on the dispatch signature's name and
/// arity only — the owner is ignored, because the receiver's runtime type
/// is exactly what the analysis is computing (a deliberate
/// over-approximation, documented in docs/CHECKS.md).  At most 64
/// distinct tags are supported.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_TAINT_TAINTSPEC_H
#define HYBRIDPT_TAINT_TAINTSPEC_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pt {
namespace taint {

/// One `Owner::name/arity` call-signature pattern.
struct SigPattern {
  /// Owning class name; "*" matches any owner.
  std::string Owner;
  /// Simple method name.
  std::string Name;
  uint32_t Arity = 0;
};

/// `source` rule: a matching call's return value is born tainted with
/// \c Tag.
struct SourceRule {
  SigPattern Pattern;
  std::string Tag;
};

/// `sink` rule: argument \c ArgIdx of a matching call must not receive
/// tainted values.
struct SinkRule {
  SigPattern Pattern;
  uint32_t ArgIdx = 0;
};

/// `sanitize` rule: a matching call's return value drops all taint tags.
struct SanitizeRule {
  SigPattern Pattern;
};

/// A parsed taint specification.
struct TaintSpec {
  std::vector<SourceRule> Sources;
  std::vector<SinkRule> Sinks;
  std::vector<SanitizeRule> Sanitizers;

  bool empty() const {
    return Sources.empty() && Sinks.empty() && Sanitizers.empty();
  }
};

/// Result of parsing a spec; \c Errors lines carry "file:line: message".
struct SpecParseResult {
  TaintSpec Spec;
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Parses taint-spec text.  \p SourceName prefixes error messages.
SpecParseResult parseSpec(std::string_view Text,
                          std::string_view SourceName = {});

/// Reads and parses \p Path; a missing/unreadable file is one error.
SpecParseResult parseSpecFile(const std::string &Path);

/// Renders \p Spec back into spec text (round-trip tested).
std::string printSpec(const TaintSpec &Spec);

} // namespace taint
} // namespace pt

#endif // HYBRIDPT_TAINT_TAINTSPEC_H
