//===- taint/TaintSpec.cpp --------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "taint/TaintSpec.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace pt;
using namespace pt::taint;

namespace {

/// Splits \p Line into whitespace-separated tokens, dropping `#` comments.
std::vector<std::string> tokenize(std::string_view Line) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : Line) {
    if (C == '#')
      break;
    if (C == ' ' || C == '\t' || C == '\r') {
      if (!Cur.empty())
        Out.push_back(std::move(Cur));
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(std::move(Cur));
  return Out;
}

/// Parses "Owner::name/arity" (Owner may be "*").
bool parsePattern(const std::string &Text, SigPattern &Out,
                  std::string &Why) {
  size_t Sep = Text.find("::");
  if (Sep == std::string::npos) {
    Why = "pattern '" + Text + "' lacks '::' (want Owner::name/arity)";
    return false;
  }
  size_t Slash = Text.rfind('/');
  if (Slash == std::string::npos || Slash < Sep + 2) {
    Why = "pattern '" + Text + "' lacks '/arity'";
    return false;
  }
  Out.Owner = Text.substr(0, Sep);
  Out.Name = Text.substr(Sep + 2, Slash - Sep - 2);
  if (Out.Owner.empty() || Out.Name.empty()) {
    Why = "pattern '" + Text + "' has an empty owner or name";
    return false;
  }
  const std::string ArityText = Text.substr(Slash + 1);
  char *End = nullptr;
  unsigned long Arity = std::strtoul(ArityText.c_str(), &End, 10);
  if (ArityText.empty() || *End != '\0') {
    Why = "pattern '" + Text + "' has a non-numeric arity";
    return false;
  }
  Out.Arity = static_cast<uint32_t>(Arity);
  return true;
}

/// Parses a "key=value" token; returns false when the key differs.
bool keyValue(const std::string &Token, std::string_view Key,
              std::string &Value) {
  if (Token.size() <= Key.size() + 1 || Token.compare(0, Key.size(), Key) ||
      Token[Key.size()] != '=')
    return false;
  Value = Token.substr(Key.size() + 1);
  return true;
}

} // namespace

SpecParseResult pt::taint::parseSpec(std::string_view Text,
                                     std::string_view SourceName) {
  SpecParseResult Result;
  std::string Prefix =
      SourceName.empty() ? "<spec>" : std::string(SourceName);
  auto Error = [&](uint32_t Line, std::string Message) {
    Result.Errors.push_back(Prefix + ":" + std::to_string(Line) + ": " +
                            std::move(Message));
  };

  uint32_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string_view::npos)
      Eol = Text.size();
    ++LineNo;
    std::vector<std::string> Tok = tokenize(Text.substr(Pos, Eol - Pos));
    Pos = Eol + 1;
    if (Tok.empty())
      continue;

    std::string Why;
    SigPattern Pattern;
    if (Tok[0] == "source") {
      if (Tok.size() != 3) {
        Error(LineNo, "'source' wants: source Owner::name/arity tag=NAME");
        continue;
      }
      if (!parsePattern(Tok[1], Pattern, Why)) {
        Error(LineNo, Why);
        continue;
      }
      std::string Tag;
      if (!keyValue(Tok[2], "tag", Tag)) {
        Error(LineNo, "'source' needs a tag=NAME argument");
        continue;
      }
      Result.Spec.Sources.push_back({std::move(Pattern), std::move(Tag)});
    } else if (Tok[0] == "sink") {
      if (Tok.size() != 3) {
        Error(LineNo, "'sink' wants: sink Owner::name/arity arg=N");
        continue;
      }
      if (!parsePattern(Tok[1], Pattern, Why)) {
        Error(LineNo, Why);
        continue;
      }
      std::string Arg;
      if (!keyValue(Tok[2], "arg", Arg)) {
        Error(LineNo, "'sink' needs an arg=N argument");
        continue;
      }
      char *End = nullptr;
      unsigned long Idx = std::strtoul(Arg.c_str(), &End, 10);
      if (Arg.empty() || *End != '\0') {
        Error(LineNo, "'sink' arg index is not a number");
        continue;
      }
      Result.Spec.Sinks.push_back(
          {std::move(Pattern), static_cast<uint32_t>(Idx)});
    } else if (Tok[0] == "sanitize") {
      if (Tok.size() != 2) {
        Error(LineNo, "'sanitize' wants: sanitize Owner::name/arity");
        continue;
      }
      if (!parsePattern(Tok[1], Pattern, Why)) {
        Error(LineNo, Why);
        continue;
      }
      Result.Spec.Sanitizers.push_back({std::move(Pattern)});
    } else {
      Error(LineNo, "unknown rule '" + Tok[0] +
                        "' (want source, sink, or sanitize)");
    }
  }

  // Tags live in a 64-bit mask downstream (interp shadow tags).
  std::vector<std::string> Tags;
  for (const SourceRule &S : Result.Spec.Sources) {
    bool Known = false;
    for (const std::string &T : Tags)
      Known |= T == S.Tag;
    if (!Known)
      Tags.push_back(S.Tag);
  }
  if (Tags.size() > 64)
    Error(LineNo, "more than 64 distinct taint tags");
  return Result;
}

SpecParseResult pt::taint::parseSpecFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    SpecParseResult Result;
    Result.Errors.push_back("cannot read taint spec '" + Path + "'");
    return Result;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return parseSpec(Buf.str(), Path);
}

std::string pt::taint::printSpec(const TaintSpec &Spec) {
  std::ostringstream OS;
  auto Pat = [](const SigPattern &P) {
    return P.Owner + "::" + P.Name + "/" + std::to_string(P.Arity);
  };
  for (const SourceRule &S : Spec.Sources)
    OS << "source " << Pat(S.Pattern) << " tag=" << S.Tag << "\n";
  for (const SinkRule &S : Spec.Sinks)
    OS << "sink " << Pat(S.Pattern) << " arg=" << S.ArgIdx << "\n";
  for (const SanitizeRule &S : Spec.Sanitizers)
    OS << "sanitize " << Pat(S.Pattern) << "\n";
  return OS.str();
}
