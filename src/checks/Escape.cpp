//===- checks/Escape.cpp ----------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checks/Escape.h"

#include "ir/Program.h"
#include "pta/AnalysisResult.h"

using namespace pt;
using namespace pt::checks;

std::vector<EscapeInfo>
pt::checks::computeEscapes(const AnalysisResult &Result) {
  const Program &Prog = Result.program();
  size_t NumHeaps = Prog.numHeaps();
  std::vector<std::string> Reason(NumHeaps);
  std::vector<bool> Escapes(NumHeaps, false);

  auto Mark = [&](uint32_t H, std::string Why) {
    if (Escapes[H])
      return false;
    Escapes[H] = true;
    Reason[H] = std::move(Why);
    return true;
  };

  // Roots: static-field reachability.
  for (const auto &[Fld, H] : Result.ciStaticEdges())
    Mark(H, "stored in static field " +
                Prog.text(Prog.field(FieldId::fromIndex(Fld)).Name));

  // Roots: returned from the allocating method.
  auto PtsByVar = Result.pointsToByVar();
  for (size_t M = 0; M != Prog.numMethods(); ++M) {
    VarId Ret = Prog.method(MethodId::fromIndex(M)).Return;
    if (!Ret.isValid())
      continue;
    for (uint32_t H : PtsByVar[Ret.index()])
      if (Prog.heap(HeapId::fromIndex(H)).InMethod.index() == M)
        Mark(H, "returned from " +
                    Prog.qualifiedName(MethodId::fromIndex(M)));
  }

  // Fixpoint over field edges: a store into an escaping base, or into a
  // base some other method allocated, leaks the stored object.  Edges only
  // ever flip Escapes bits on, so re-sweeping until quiescence terminates.
  auto Edges = Result.ciFieldEdges();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &[Base, Fld, H] : Edges) {
      if (Escapes[H])
        continue;
      bool CrossMethod = Prog.heap(HeapId::fromIndex(Base)).InMethod !=
                         Prog.heap(HeapId::fromIndex(H)).InMethod;
      if (!Escapes[Base] && !CrossMethod)
        continue;
      std::string FldName = Prog.text(Prog.field(FieldId::fromIndex(Fld)).Name);
      std::string BaseName = Prog.text(Prog.heap(HeapId::fromIndex(Base)).Name);
      Changed |= Mark(H, "stored in field " + FldName + " of " +
                             (Escapes[Base] ? "escaping " : "foreign ") +
                             "object `" + BaseName + "`");
    }
  }

  std::vector<EscapeInfo> Out;
  for (uint32_t H = 0; H != NumHeaps; ++H)
    if (Escapes[H])
      Out.push_back({HeapId::fromIndex(H), std::move(Reason[H])});
  return Out;
}
