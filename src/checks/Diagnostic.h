//===- checks/Diagnostic.h - Checker diagnostic model -----------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic record produced by the points-to-backed checkers: a rule
/// id, a severity, a policy-independent site key, a human-readable message
/// anchored at an IR location, and the points-to evidence that justifies
/// the report.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_CHECKS_DIAGNOSTIC_H
#define HYBRIDPT_CHECKS_DIAGNOSTIC_H

#include "support/Ids.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pt {
namespace checks {

/// Diagnostic severity, mapped onto SARIF levels (note/warning/error).
enum class Severity : uint8_t {
  Note,
  Warning,
  Error,
};

/// SARIF level string for \p S ("note", "warning", "error").
const char *severityName(Severity S);

/// How a checker's report set behaves under context-policy refinement.
///
/// \c May checkers report facts the analysis could not rule out (a cast may
/// fail, a site may be polymorphic, an object may escape).  A strictly more
/// precise policy only shrinks context-insensitive fact sets, so May reports
/// shrink too — refined ⊆ base.  The fuzz oracle and the `--compare`
/// reduction metric assert exactly this.
///
/// \c Definite checkers report *proven* emptiness (a variable points to
/// nothing, a method is unreachable, a call site is dead).  Precision proves
/// more emptiness, so these grow under refinement and are excluded from the
/// monotonicity checks.
enum class Direction : uint8_t {
  May,
  Definite,
};

/// One step of a diagnostic's derivation flow (SARIF codeFlows): a
/// rendered provenance step with its anchoring method.  Produced by
/// \c attachDerivationFlows when a lint run records provenance.
struct FlowStep {
  /// "[rule] Fact(...)" rendering of one derivation step.
  std::string Message;
  /// Method the step's conclusion is attributed to; invalid = program
  /// scope (static fields, entry points).
  MethodId Method;
  /// Source line; 0 when unknown.
  uint32_t Line = 0;
};

/// One checker finding.
struct Diagnostic {
  /// Registry id of the producing checker, e.g. "may-fail-cast".
  std::string CheckId;
  /// Stable rule id for machine output, e.g. "HPT004".
  std::string RuleId;
  Severity Sev = Severity::Warning;
  Direction Dir = Direction::May;
  /// Policy-independent site key ("cast:3", "invoke:7", "heap:2", ...).
  /// Equal keys across two runs of the same program denote the same report,
  /// which is what `--compare` and the monotonicity oracle diff on.
  std::string SiteKey;
  std::string Message;
  /// Enclosing method (invalid for whole-program reports).
  MethodId Method;
  /// Source line; 0 when unknown.
  uint32_t Line = 0;
  /// Points-to evidence lines (offending heap sites, call targets, escape
  /// reasons), already rendered.
  std::vector<std::string> Evidence;
  /// Provenance anchors, filled by checkers that can name the fact
  /// justifying the report.  When both \c WhyVar and \c WhyHeap are valid
  /// the offending fact is VarPointsTo(WhyVar, *, WhyHeap); when only
  /// \c WhyReachable is valid it is Reachable(WhyReachable, *) — the
  /// report hinges on the site being reachable at all.  Ignored unless a
  /// provenance recorder is attached to the lint run.
  VarId WhyVar;
  HeapId WhyHeap;
  MethodId WhyReachable;
  /// Derivation of the anchored fact, leaves first (conclusion last);
  /// rendered as a SARIF codeFlow.  Empty without provenance.
  std::vector<FlowStep> Flow;

  /// Diff key: same check, same site.
  std::string key() const { return CheckId + "|" + SiteKey; }
};

/// Sorts diagnostics into the canonical report order: by source line, then
/// check id, then site key.  Deterministic for equal inputs.
void sortDiagnostics(std::vector<Diagnostic> &Diags);

} // namespace checks
} // namespace pt

#endif // HYBRIDPT_CHECKS_DIAGNOSTIC_H
