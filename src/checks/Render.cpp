//===- checks/Render.cpp ----------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checks/Render.h"

#include "ir/Program.h"

#include <cstdio>

using namespace pt;
using namespace pt::checks;

std::string pt::checks::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

std::string locationPrefix(const Program &Prog, const Diagnostic &D) {
  std::string Out =
      Prog.sourceName().empty() ? std::string("<input>") : Prog.sourceName();
  if (D.Line != 0) {
    Out += ":";
    Out += std::to_string(D.Line);
  }
  return Out;
}

} // namespace

void pt::checks::renderText(std::ostream &OS, const Program &Prog,
                            const std::vector<Diagnostic> &Diags) {
  for (const Diagnostic &D : Diags) {
    OS << locationPrefix(Prog, D) << ": " << severityName(D.Sev) << ": ["
       << D.RuleId << "] " << D.Message << "\n";
    for (const std::string &E : D.Evidence)
      OS << "    " << E << "\n";
  }
}

void pt::checks::renderJsonl(std::ostream &OS, const Program &Prog,
                             const std::vector<Diagnostic> &Diags,
                             const std::string &PolicyName) {
  for (const Diagnostic &D : Diags) {
    OS << "{\"rule\":\"" << jsonEscape(D.RuleId) << "\",\"check\":\""
       << jsonEscape(D.CheckId) << "\",\"level\":\"" << severityName(D.Sev)
       << "\",\"siteKey\":\"" << jsonEscape(D.SiteKey) << "\",\"message\":\""
       << jsonEscape(D.Message) << "\",\"file\":\""
       << jsonEscape(Prog.sourceName()) << "\",\"line\":" << D.Line;
    OS << ",\"method\":\""
       << jsonEscape(D.Method.isValid() ? Prog.qualifiedName(D.Method) : "")
       << "\"";
    OS << ",\"evidence\":[";
    for (size_t I = 0; I != D.Evidence.size(); ++I) {
      if (I)
        OS << ",";
      OS << "\"" << jsonEscape(D.Evidence[I]) << "\"";
    }
    OS << "]";
    if (!PolicyName.empty())
      OS << ",\"policy\":\"" << jsonEscape(PolicyName) << "\"";
    OS << "}\n";
  }
}
