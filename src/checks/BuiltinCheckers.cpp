//===- checks/BuiltinCheckers.cpp -------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The seven builtin checkers.  may-fail-cast and dead/poly-vcall are the
// paper's two precision clients (Clients.h) re-homed into the checker
// framework; uninit-deref, unreachable-method, and method-escape are new
// consumers of the same analysis results; tainted-sink is the taint
// engine's client (docs/CHECKS.md "Taint analysis").
//
//===----------------------------------------------------------------------===//

#include "checks/Checker.h"
#include "checks/Escape.h"

#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "pta/Clients.h"
#include "taint/Taint.h"

#include <string>

using namespace pt;
using namespace pt::checks;

namespace {

/// Evidence lists are capped so one megamorphic site cannot flood reports;
/// a trailing "... (+N more)" records the cut.
constexpr size_t MaxEvidence = 5;

void capEvidence(std::vector<std::string> &Ev, size_t Total) {
  if (Total > MaxEvidence)
    Ev.push_back("... (+" + std::to_string(Total - MaxEvidence) + " more)");
}

std::string varName(const Program &P, VarId V) {
  return P.text(P.var(V).Name);
}

std::string fieldName(const Program &P, FieldId F) {
  return P.text(P.field(F).Name);
}

std::string heapDesc(const Program &P, HeapId H) {
  return "`" + P.text(P.heap(H).Name) + "` (" +
         P.text(P.type(P.heap(H).Type).Name) + ")";
}

/// Convenience base: stores the info block, implements info().
class BuiltinChecker : public Checker {
public:
  explicit BuiltinChecker(CheckerInfo I) : MyInfo(std::move(I)) {}
  const CheckerInfo &info() const override { return MyInfo; }

protected:
  /// A diagnostic pre-filled with this checker's identity.
  Diagnostic blank() const {
    Diagnostic D;
    D.CheckId = MyInfo.Id;
    D.RuleId = MyInfo.RuleId;
    D.Sev = MyInfo.Sev;
    D.Dir = MyInfo.Dir;
    return D;
  }

private:
  CheckerInfo MyInfo;
};

//===----------------------------------------------------------------------===//
// HPT001 uninit-deref: dereference of a variable proven to point nowhere.
//===----------------------------------------------------------------------===//

class UninitDerefChecker : public BuiltinChecker {
public:
  UninitDerefChecker()
      : BuiltinChecker({"uninit-deref", "HPT001", "UninitializedDereference",
                        "A reachable instruction dereferences or throws a "
                        "variable the analysis proves points to no object",
                        Severity::Warning, Direction::Definite}) {}

  void run(const AnalysisResult &R, std::vector<Diagnostic> &Out) const override {
    const Program &P = R.program();
    auto Pts = R.pointsToByVar();
    auto Empty = [&](VarId V) { return Pts[V.index()].empty(); };

    for (MethodId M : R.reachableMethods()) {
      const MethodInfo &MI = P.method(M);
      std::string Where = " in " + P.qualifiedName(M);
      for (size_t I = 0; I != MI.Loads.size(); ++I) {
        const LoadInstr &L = MI.Loads[I];
        if (!Empty(L.Base))
          continue;
        Diagnostic D = blank();
        D.SiteKey = "load:" + std::to_string(M.index()) + ":" +
                    std::to_string(I);
        D.Message = "load of field `" + fieldName(P, L.Fld) +
                    "` from `" + varName(P, L.Base) +
                    "`, which points to no object" + Where;
        D.Method = M;
        D.Line = L.Line;
        D.WhyReachable = M; // Hinges on the method being reachable.
        Out.push_back(std::move(D));
      }
      for (size_t I = 0; I != MI.Stores.size(); ++I) {
        const StoreInstr &S = MI.Stores[I];
        if (!Empty(S.Base))
          continue;
        Diagnostic D = blank();
        D.SiteKey = "store:" + std::to_string(M.index()) + ":" +
                    std::to_string(I);
        D.Message = "store to field `" + fieldName(P, S.Fld) +
                    "` of `" + varName(P, S.Base) +
                    "`, which points to no object" + Where;
        D.Method = M;
        D.Line = S.Line;
        D.WhyReachable = M;
        Out.push_back(std::move(D));
      }
      for (size_t I = 0; I != MI.Throws.size(); ++I) {
        const ThrowInstr &T = MI.Throws[I];
        if (!Empty(T.V))
          continue;
        Diagnostic D = blank();
        D.SiteKey = "throw:" + std::to_string(M.index()) + ":" +
                    std::to_string(I);
        D.Message = "throw of `" + varName(P, T.V) +
                    "`, which points to no object" + Where;
        D.Method = M;
        D.Line = T.Line;
        D.WhyReachable = M;
        Out.push_back(std::move(D));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// HPT002 unreachable-method: never called from any entry point.
//===----------------------------------------------------------------------===//

class UnreachableMethodChecker : public BuiltinChecker {
public:
  UnreachableMethodChecker()
      : BuiltinChecker({"unreachable-method", "HPT002", "UnreachableMethod",
                        "A method is not reachable from any entry point "
                        "under the analysis call graph",
                        Severity::Note, Direction::Definite}) {}

  void run(const AnalysisResult &R, std::vector<Diagnostic> &Out) const override {
    const Program &P = R.program();
    std::vector<bool> Reached(P.numMethods(), false);
    for (MethodId M : R.reachableMethods())
      Reached[M.index()] = true;
    for (size_t M = 0; M != P.numMethods(); ++M) {
      if (Reached[M])
        continue;
      MethodId Id = MethodId::fromIndex(M);
      Diagnostic D = blank();
      D.SiteKey = "method:" + std::to_string(M);
      D.Message = "method " + P.qualifiedName(Id) +
                  " is unreachable from every entry point";
      D.Method = Id;
      D.Line = P.method(Id).DeclLine;
      Out.push_back(std::move(D));
    }
  }
};

//===----------------------------------------------------------------------===//
// HPT003 dead-vcall: a reachable virtual call site with no receiver.
//===----------------------------------------------------------------------===//

class DeadVCallChecker : public BuiltinChecker {
public:
  DeadVCallChecker()
      : BuiltinChecker({"dead-vcall", "HPT003", "DeadVirtualCall",
                        "A virtual call site in a reachable method has no "
                        "possible receiver object, so it never dispatches",
                        Severity::Warning, Direction::Definite}) {}

  void run(const AnalysisResult &R, std::vector<Diagnostic> &Out) const override {
    const Program &P = R.program();
    for (const DevirtSite &S : devirtualizeCalls(R)) {
      if (S.Verdict != DevirtVerdict::Dead)
        continue;
      const InvokeInfo &Inv = P.invoke(S.Invo);
      Diagnostic D = blank();
      D.SiteKey = "invoke:" + std::to_string(S.Invo.index());
      D.Message = "virtual call `" + P.text(Inv.Name) + "` on `" +
                  varName(P, Inv.Base) + "` has no possible receiver in " +
                  P.qualifiedName(Inv.InMethod);
      D.Method = Inv.InMethod;
      D.Line = Inv.Line;
      D.WhyReachable = Inv.InMethod; // "reachable yet dead" needs the reach.
      Out.push_back(std::move(D));
    }
  }
};

//===----------------------------------------------------------------------===//
// HPT004 may-fail-cast: the paper's cast-safety client.
//===----------------------------------------------------------------------===//

class MayFailCastChecker : public BuiltinChecker {
public:
  MayFailCastChecker()
      : BuiltinChecker({"may-fail-cast", "HPT004", "MayFailCast",
                        "A reference cast may observe an object that is not "
                        "a subtype of the cast target",
                        Severity::Warning, Direction::May}) {}

  void run(const AnalysisResult &R, std::vector<Diagnostic> &Out) const override {
    const Program &P = R.program();
    for (const CastCheck &C : checkCasts(R)) {
      if (C.Verdict != CastVerdict::MayFail)
        continue;
      const CastSite &Site = P.castSite(C.Site);
      Diagnostic D = blank();
      D.SiteKey = "cast:" + std::to_string(C.Site);
      D.Message = "cast of `" + varName(P, Site.From) + "` to " +
                  P.text(P.type(Site.Target).Name) + " may fail in " +
                  P.qualifiedName(Site.InMethod);
      D.Method = Site.InMethod;
      D.Line = Site.Line;
      if (!C.Offenders.empty()) {
        // Why may the cast fail?  Because `from` may hold the first
        // offending allocation — the derivation of exactly that fact.
        D.WhyVar = Site.From;
        D.WhyHeap = C.Offenders.front();
      }
      for (size_t I = 0; I != C.Offenders.size() && I != MaxEvidence; ++I)
        D.Evidence.push_back("may hold " + heapDesc(P, C.Offenders[I]));
      capEvidence(D.Evidence, C.Offenders.size());
      Out.push_back(std::move(D));
    }
  }
};

//===----------------------------------------------------------------------===//
// HPT005 poly-vcall: the paper's devirtualization client, inverted — sites
// that resist devirtualization.
//===----------------------------------------------------------------------===//

class PolyVCallChecker : public BuiltinChecker {
public:
  PolyVCallChecker()
      : BuiltinChecker({"poly-vcall", "HPT005", "PolymorphicVirtualCall",
                        "A virtual call site may dispatch to two or more "
                        "targets, so it cannot be devirtualized",
                        Severity::Note, Direction::May}) {}

  void run(const AnalysisResult &R, std::vector<Diagnostic> &Out) const override {
    const Program &P = R.program();
    for (const DevirtSite &S : devirtualizeCalls(R)) {
      if (S.Verdict != DevirtVerdict::Polymorphic)
        continue;
      const InvokeInfo &Inv = P.invoke(S.Invo);
      Diagnostic D = blank();
      D.SiteKey = "invoke:" + std::to_string(S.Invo.index());
      D.Message = "virtual call `" + P.text(Inv.Name) + "` in " +
                  P.qualifiedName(Inv.InMethod) + " has " +
                  std::to_string(S.Targets.size()) + " possible targets";
      D.Method = Inv.InMethod;
      D.Line = Inv.Line;
      for (size_t I = 0; I != S.Targets.size() && I != MaxEvidence; ++I)
        D.Evidence.push_back("may dispatch to " +
                             P.qualifiedName(S.Targets[I]));
      capEvidence(D.Evidence, S.Targets.size());
      Out.push_back(std::move(D));
    }
  }
};

//===----------------------------------------------------------------------===//
// HPT006 method-escape: the allocation flows out of its allocating method.
//===----------------------------------------------------------------------===//

class MethodEscapeChecker : public BuiltinChecker {
public:
  MethodEscapeChecker()
      : BuiltinChecker({"method-escape", "HPT006", "MethodEscape",
                        "An allocated object may escape its allocating "
                        "method via a return, a static field, or a store "
                        "into an escaping object",
                        Severity::Note, Direction::May}) {}

  void run(const AnalysisResult &R, std::vector<Diagnostic> &Out) const override {
    const Program &P = R.program();
    for (const EscapeInfo &E : computeEscapes(R)) {
      const HeapInfo &H = P.heap(E.Heap);
      Diagnostic D = blank();
      D.SiteKey = "heap:" + std::to_string(E.Heap.index());
      D.Message = "object `" + P.text(H.Name) + "` may escape " +
                  P.qualifiedName(H.InMethod);
      D.Method = H.InMethod;
      D.Line = H.Line;
      D.Evidence.push_back(E.Reason);
      Out.push_back(std::move(D));
    }
  }
};

//===----------------------------------------------------------------------===//
// HPT007 tainted-sink: spec-declared sink may receive tainted data.
//===----------------------------------------------------------------------===//

class TaintedSinkChecker : public BuiltinChecker {
public:
  TaintedSinkChecker()
      : BuiltinChecker({"tainted-sink", "HPT007", "TaintedSink",
                        "An argument of a taint-spec sink call may receive "
                        "data born at a taint source without passing a "
                        "sanitizer",
                        Severity::Warning, Direction::May}) {}

  void run(const AnalysisResult &R, std::vector<Diagnostic> &Out) const override {
    // Reports nothing on ordinary programs: only taint::instrument()
    // attaches sink metadata, so every non-taint pipeline is unaffected.
    const Program &P = R.program();
    for (const taint::TaintedSink &S : taint::findTaintedSinks(R)) {
      const InvokeInfo &Inv = P.invoke(S.Site);
      Diagnostic D = blank();
      D.SiteKey = "sink:" + std::to_string(S.Site.index()) + ":" +
                  std::to_string(S.ArgIdx) + ":" + std::to_string(S.TagIdx);
      D.Message = "argument " + std::to_string(S.ArgIdx) + " of sink call `" +
                  P.text(Inv.Name) + "` may receive `" +
                  P.taintTags()[S.TagIdx] + "`-tainted data in " +
                  P.qualifiedName(Inv.InMethod);
      D.Method = Inv.InMethod;
      D.Line = Inv.Line;
      // Why is the sink tainted?  Because the actual may hold the witness
      // taint object — its derivation is the source-to-sink flow.
      D.WhyVar = S.Actual;
      D.WhyHeap = S.Witness;
      D.Evidence.push_back("may hold " + heapDesc(P, S.Witness) +
                           " tagged `" + P.taintTags()[S.TagIdx] + "`");
      Out.push_back(std::move(D));
    }
  }
};

} // namespace

namespace pt {
namespace checks {

void registerBuiltinCheckers(CheckerRegistry &R) {
  R.add(UninitDerefChecker().info(),
        [] { return std::make_unique<UninitDerefChecker>(); });
  R.add(UnreachableMethodChecker().info(),
        [] { return std::make_unique<UnreachableMethodChecker>(); });
  R.add(DeadVCallChecker().info(),
        [] { return std::make_unique<DeadVCallChecker>(); });
  R.add(MayFailCastChecker().info(),
        [] { return std::make_unique<MayFailCastChecker>(); });
  R.add(PolyVCallChecker().info(),
        [] { return std::make_unique<PolyVCallChecker>(); });
  R.add(MethodEscapeChecker().info(),
        [] { return std::make_unique<MethodEscapeChecker>(); });
  R.add(TaintedSinkChecker().info(),
        [] { return std::make_unique<TaintedSinkChecker>(); });
}

} // namespace checks
} // namespace pt
