//===- checks/Checker.h - Checker interface and registry --------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker interface: each checker inspects one \c AnalysisResult and
/// appends \c Diagnostic records.  Checkers are stateless between runs and
/// registered by id in the \c CheckerRegistry, which the lint driver, the
/// fuzz oracle, and the tests all draw from.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_CHECKS_CHECKER_H
#define HYBRIDPT_CHECKS_CHECKER_H

#include "checks/Diagnostic.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pt {

class AnalysisResult;

namespace checks {

/// Static metadata of one checker; also the SARIF rule descriptor.
struct CheckerInfo {
  /// Registry id, kebab-case: "may-fail-cast".
  std::string Id;
  /// Stable rule id: "HPT004".
  std::string RuleId;
  /// CamelCase rule name for SARIF: "MayFailCast".
  std::string Name;
  /// One-line rule description.
  std::string Summary;
  Severity Sev = Severity::Warning;
  Direction Dir = Direction::May;
};

/// A points-to-backed checker.  Implementations must be deterministic: the
/// same \c AnalysisResult yields the same diagnostics in the same order.
class Checker {
public:
  virtual ~Checker() = default;

  virtual const CheckerInfo &info() const = 0;

  /// Appends this checker's findings over \p Result to \p Out.
  virtual void run(const AnalysisResult &Result,
                   std::vector<Diagnostic> &Out) const = 0;
};

/// Global checker registry.  Builtin checkers self-register on first use;
/// ids are listed in registration order (stable across runs).
class CheckerRegistry {
public:
  using Factory = std::function<std::unique_ptr<Checker>()>;

  /// The process-wide registry, with builtins pre-registered.
  static CheckerRegistry &instance();

  /// Registers a checker factory under \p Info.Id.  Duplicate ids are a
  /// programming error (asserted in debug builds, ignored in release).
  void add(CheckerInfo Info, Factory F);

  /// All registered checker ids, in registration order.
  std::vector<std::string> ids() const;

  /// Metadata of checker \p Id; null when unknown.
  const CheckerInfo *info(const std::string &Id) const;

  /// Instantiates checker \p Id; null when unknown.
  std::unique_ptr<Checker> create(const std::string &Id) const;

  /// Instantiates every registered checker, in registration order.
  std::vector<std::unique_ptr<Checker>> createAll() const;

private:
  struct Entry {
    CheckerInfo Info;
    Factory Make;
  };
  std::vector<Entry> Entries;
};

} // namespace checks
} // namespace pt

#endif // HYBRIDPT_CHECKS_CHECKER_H
