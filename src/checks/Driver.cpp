//===- checks/Driver.cpp ----------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checks/Driver.h"

#include "checks/Flow.h"
#include "context/PolicyRegistry.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "pta/Solver.h"

#include <algorithm>
#include <set>

using namespace pt;
using namespace pt::checks;

LintRun pt::checks::runCheckers(const AnalysisResult &Result,
                                const std::vector<std::string> &Checks) {
  LintRun Run;
  Run.Aborted = Result.Aborted;
  Run.Reason = Result.Reason;
  Run.SolveMs = Result.SolveMs;

  CheckerRegistry &Reg = CheckerRegistry::instance();
  std::vector<std::string> Ids = Checks.empty() ? Reg.ids() : Checks;
  for (const std::string &Id : Ids) {
    std::unique_ptr<Checker> C = Reg.create(Id);
    if (!C) {
      Run.Error = "unknown checker '" + Id + "'";
      return Run;
    }
    Run.Rules.push_back(C->info());
    C->run(Result, Run.Diags);
  }
  sortDiagnostics(Run.Diags);
  return Run;
}

LintRun pt::checks::lintProgram(const Program &Prog, const LintOptions &Opts) {
  std::unique_ptr<ContextPolicy> Policy = createPolicy(Opts.Policy, Prog);
  if (!Policy) {
    LintRun Run;
    Run.Error = "unknown policy '" + Opts.Policy + "'";
    return Run;
  }
  SolverOptions SOpts;
  SOpts.TimeBudgetMs = Opts.TimeBudgetMs;
  SOpts.MaxFacts = Opts.MaxFacts;
  SOpts.MemoryBudgetBytes = Opts.MemoryBudgetBytes;
  SOpts.Cancel = Opts.Cancel;
  SOpts.Prov = Opts.Prov;
  Solver S(Prog, *Policy, SOpts);
  AnalysisResult Result = S.run();
  LintRun Run = runCheckers(Result, Opts.Checks);
  if (PT_PROV_ACTIVE(Opts.Prov))
    attachDerivationFlows(Result, *Opts.Prov, Run.Diags);
  if (Opts.KeepResult) {
    Run.Policy = std::move(Policy);
    Run.Result.emplace(std::move(Result));
  }
  return Run;
}

namespace {

/// Per-checker report keys of one run, ordered.
std::set<std::string> keysOf(const LintRun &Run, const std::string &CheckId) {
  std::set<std::string> Out;
  for (const Diagnostic &D : Run.Diags)
    if (D.CheckId == CheckId)
      Out.insert(D.SiteKey);
  return Out;
}

} // namespace

std::vector<std::string> CompareResult::monotonicityViolations() const {
  std::vector<std::string> Out;
  for (const CheckDelta &D : Deltas)
    if (D.Dir == Direction::May)
      for (const std::string &K : D.Introduced)
        Out.push_back(D.CheckId + "|" + K);
  return Out;
}

int64_t CompareResult::reduction() const {
  int64_t Sum = 0;
  for (const CheckDelta &D : Deltas)
    if (D.Dir == Direction::May)
      Sum += static_cast<int64_t>(D.Resolved.size()) -
             static_cast<int64_t>(D.Introduced.size());
  return Sum;
}

CompareResult pt::checks::comparePolicies(const Program &Prog,
                                          const std::string &Base,
                                          const std::string &Refined,
                                          const LintOptions &Opts) {
  CompareResult CR;
  CR.BasePolicy = Base;
  CR.RefinedPolicy = Refined;

  LintOptions BaseOpts = Opts;
  BaseOpts.Policy = Base;
  // Two runs cannot share one arena: fact payloads embed per-run dense
  // object ids.  The comparison never reads provenance anyway.
  BaseOpts.Prov = nullptr;
  BaseOpts.KeepResult = false;
  CR.Base = lintProgram(Prog, BaseOpts);
  if (!CR.Base.ok()) {
    CR.Error = CR.Base.Error;
    return CR;
  }
  LintOptions RefOpts = Opts;
  RefOpts.Policy = Refined;
  RefOpts.Prov = nullptr;
  RefOpts.KeepResult = false;
  CR.Refined = lintProgram(Prog, RefOpts);
  if (!CR.Refined.ok()) {
    CR.Error = CR.Refined.Error;
    return CR;
  }
  if (CR.Base.Aborted || CR.Refined.Aborted) {
    CR.Error = "a run hit its budget; the comparison would be meaningless";
    return CR;
  }

  for (const CheckerInfo &Info : CR.Base.Rules) {
    CheckDelta Delta;
    Delta.CheckId = Info.Id;
    Delta.Dir = Info.Dir;
    std::set<std::string> BaseKeys = keysOf(CR.Base, Info.Id);
    std::set<std::string> RefKeys = keysOf(CR.Refined, Info.Id);
    Delta.BaseCount = BaseKeys.size();
    Delta.RefinedCount = RefKeys.size();
    std::set_difference(BaseKeys.begin(), BaseKeys.end(), RefKeys.begin(),
                        RefKeys.end(), std::back_inserter(Delta.Resolved));
    std::set_difference(RefKeys.begin(), RefKeys.end(), BaseKeys.begin(),
                        BaseKeys.end(), std::back_inserter(Delta.Introduced));
    CR.Deltas.push_back(std::move(Delta));
  }
  return CR;
}

void pt::checks::renderCompare(std::ostream &OS, const CompareResult &CR) {
  OS << "comparing " << CR.BasePolicy << " (base) vs " << CR.RefinedPolicy
     << " (refined)\n";
  OS << "  checker               base  refined  resolved  introduced\n";
  for (const CheckDelta &D : CR.Deltas) {
    OS << "  " << D.CheckId;
    for (size_t I = D.CheckId.size(); I < 20; ++I)
      OS << ' ';
    OS << ' ';
    auto Cell = [&](size_t N, int Width) {
      std::string S = std::to_string(N);
      for (int I = static_cast<int>(S.size()); I < Width; ++I)
        OS << ' ';
      OS << S;
    };
    Cell(D.BaseCount, 5);
    Cell(D.RefinedCount, 9);
    Cell(D.Resolved.size(), 10);
    Cell(D.Introduced.size(), 12);
    if (D.Dir == Direction::Definite)
      OS << "  (definite; excluded from reduction)";
    OS << "\n";
  }
  OS << "may-report reduction: " << CR.reduction() << "\n";
  std::vector<std::string> Bad = CR.monotonicityViolations();
  if (Bad.empty()) {
    OS << "monotonicity: ok (refined may-reports are a subset of base)\n";
  } else {
    OS << "monotonicity: VIOLATED — refined policy introduced "
       << Bad.size() << " may-report(s):\n";
    for (const std::string &K : Bad)
      OS << "  " << K << "\n";
  }
}
