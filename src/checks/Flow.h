//===- checks/Flow.h - Derivation codeFlows for diagnostics -----*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attaches provenance-derived code flows to checker diagnostics: when a
/// lint run records derivation provenance, every diagnostic that names a
/// "why" anchor (Diagnostic::WhyVar/WhyHeap or WhyReachable) gets its
/// anchored fact's minimal derivation rendered as Diagnostic::Flow, which
/// the SARIF writer emits as a codeFlow (docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_CHECKS_FLOW_H
#define HYBRIDPT_CHECKS_FLOW_H

#include "checks/Diagnostic.h"
#include "pta/provenance/Provenance.h"

#include <vector>

namespace pt {

class AnalysisResult;

namespace checks {

/// Fills \c D.Flow for every diagnostic in \p Diags whose anchors resolve
/// to a recorded fact.  Diagnostics without anchors, and anchors whose
/// fact was never derived (possible under an aborted run), are left
/// untouched.  Flow steps are capped at \p MaxSteps (leaves dropped
/// first, conclusion always kept) so one deep derivation cannot bloat the
/// SARIF log.
void attachDerivationFlows(const AnalysisResult &Res,
                           const prov::Recorder &Rec,
                           std::vector<Diagnostic> &Diags,
                           size_t MaxSteps = 32);

} // namespace checks
} // namespace pt

#endif // HYBRIDPT_CHECKS_FLOW_H
