//===- checks/Flow.cpp ------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checks/Flow.h"

#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "support/Hashing.h"

using namespace pt;
using namespace pt::checks;
using namespace pt::prov;

#if HYBRIDPT_PROVENANCE_ENABLED

namespace {

/// Method a step's conclusion is attributed to (mirrors the blame
/// attribution): var owner, throwing/reachable method, invoking method.
MethodId flowMethod(const Program &Prog, const AnalysisResult &Res,
                    const Fact &F) {
  switch (F.Kind) {
  case FactKind::VarPointsTo:
    return Prog.var(VarId(unpackHi(F.A))).Owner;
  case FactKind::FieldPointsTo: {
    uint32_t BaseObj = unpackHi(F.A);
    if (BaseObj < Res.numObjects())
      return Prog.heap(Res.objHeap(BaseObj)).InMethod;
    return MethodId();
  }
  case FactKind::StaticPointsTo:
    return MethodId();
  case FactKind::ThrowPointsTo:
  case FactKind::Reachable:
    return MethodId(unpackHi(F.A));
  case FactKind::CallEdge:
    return Prog.invoke(InvokeId(unpackHi(F.A))).InMethod;
  }
  return MethodId();
}

/// Best source line for a step's conclusion: the alloc site's line for
/// Alloc conclusions, the invoke's line for call edges, the attributed
/// method's declaration line otherwise; 0 when nothing is known.
uint32_t flowLine(const Program &Prog, const AnalysisResult &Res,
                  const Fact &F, Rule R, MethodId M) {
  if (F.Kind == FactKind::CallEdge)
    return Prog.invoke(InvokeId(unpackHi(F.A))).Line;
  if (R == Rule::Alloc && F.Kind == FactKind::VarPointsTo) {
    uint32_t Obj = static_cast<uint32_t>(F.B64);
    if (Obj < Res.numObjects())
      return Prog.heap(Res.objHeap(Obj)).Line;
  }
  if (M.isValid())
    return Prog.method(M).DeclLine;
  return 0;
}

/// Converts a derivation tree into FlowSteps (leaves first, conclusion
/// last), keeping at most MaxSteps by dropping the deepest leaves first.
std::vector<FlowStep> toFlow(const Recorder &Rec, const AnalysisResult &Res,
                             const DerivationTree &Tree, size_t MaxSteps) {
  const Program &Prog = Res.program();
  std::vector<FlowStep> Out;
  size_t N = Tree.Steps.size();
  size_t First = N > MaxSteps ? N - MaxSteps : 0;
  Out.reserve(N - First);
  for (size_t I = First; I < N; ++I) {
    const TreeStep &TS = Tree.Steps[I];
    Fact F = Rec.fact(TS.FactId);
    FlowStep S;
    S.Method = flowMethod(Prog, Res, F);
    S.Line = flowLine(Prog, Res, F, TS.R, S.Method);
    S.Message = std::string("[") + ruleName(TS.R) + "] " +
                formatFact(Rec, Res, TS.FactId);
    Out.push_back(std::move(S));
  }
  return Out;
}

/// Derivation of Reachable(M, *): the first recorded Reachable fact for M
/// in any context.  (whyPointsTo's sibling; no context filter because the
/// checkers anchor on "reachable at all".)
DerivationTree whyReachable(const Recorder &Rec, MethodId M) {
  size_t NumFacts = Rec.numFacts();
  for (uint32_t Id = 0; Id < NumFacts; ++Id) {
    Fact F = Rec.fact(Id);
    if (F.Kind == FactKind::Reachable && unpackHi(F.A) == M.rawValue())
      return deriveFact(Rec, Id);
  }
  DerivationTree Tree;
  Tree.Error = "no recorded Reachable fact for the method";
  return Tree;
}

} // namespace

void pt::checks::attachDerivationFlows(const AnalysisResult &Res,
                                       const Recorder &Rec,
                                       std::vector<Diagnostic> &Diags,
                                       size_t MaxSteps) {
  for (Diagnostic &D : Diags) {
    DerivationTree Tree;
    if (D.WhyVar.isValid() && D.WhyHeap.isValid())
      Tree = whyPointsTo(Rec, Res, D.WhyVar, CtxId(), D.WhyHeap);
    else if (D.WhyReachable.isValid())
      Tree = whyReachable(Rec, D.WhyReachable);
    else
      continue;
    if (!Tree.Found)
      continue; // Aborted runs may lack the fact; the report stands alone.
    D.Flow = toFlow(Rec, Res, Tree, MaxSteps);
  }
}

#else // !HYBRIDPT_PROVENANCE_ENABLED

void pt::checks::attachDerivationFlows(const AnalysisResult &,
                                       const prov::Recorder &,
                                       std::vector<Diagnostic> &, size_t) {}

#endif
