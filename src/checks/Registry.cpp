//===- checks/Registry.cpp --------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checks/Checker.h"

#include <algorithm>
#include <cassert>

using namespace pt;
using namespace pt::checks;

namespace pt {
namespace checks {
/// Defined in BuiltinCheckers.cpp; called once to populate the registry.
void registerBuiltinCheckers(CheckerRegistry &R);
} // namespace checks
} // namespace pt

const char *pt::checks::severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "warning";
}

void pt::checks::sortDiagnostics(std::vector<Diagnostic> &Diags) {
  std::sort(Diags.begin(), Diags.end(),
            [](const Diagnostic &A, const Diagnostic &B) {
              if (A.Line != B.Line)
                return A.Line < B.Line;
              if (A.CheckId != B.CheckId)
                return A.CheckId < B.CheckId;
              return A.SiteKey < B.SiteKey;
            });
}

CheckerRegistry &CheckerRegistry::instance() {
  static CheckerRegistry *R = [] {
    auto *Reg = new CheckerRegistry();
    registerBuiltinCheckers(*Reg);
    return Reg;
  }();
  return *R;
}

void CheckerRegistry::add(CheckerInfo Info, Factory F) {
  for (const Entry &E : Entries) {
    if (E.Info.Id == Info.Id) {
      assert(false && "duplicate checker id");
      return;
    }
  }
  Entries.push_back({std::move(Info), std::move(F)});
}

std::vector<std::string> CheckerRegistry::ids() const {
  std::vector<std::string> Out;
  Out.reserve(Entries.size());
  for (const Entry &E : Entries)
    Out.push_back(E.Info.Id);
  return Out;
}

const CheckerInfo *CheckerRegistry::info(const std::string &Id) const {
  for (const Entry &E : Entries)
    if (E.Info.Id == Id)
      return &E.Info;
  return nullptr;
}

std::unique_ptr<Checker> CheckerRegistry::create(const std::string &Id) const {
  for (const Entry &E : Entries)
    if (E.Info.Id == Id)
      return E.Make();
  return nullptr;
}

std::vector<std::unique_ptr<Checker>> CheckerRegistry::createAll() const {
  std::vector<std::unique_ptr<Checker>> Out;
  Out.reserve(Entries.size());
  for (const Entry &E : Entries)
    Out.push_back(E.Make());
  return Out;
}
