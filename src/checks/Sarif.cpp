//===- checks/Sarif.cpp -----------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checks/Sarif.h"

#include "checks/Render.h"
#include "ir/Program.h"

#include <cstddef>

using namespace pt;
using namespace pt::checks;

namespace {

/// Minimal streaming JSON writer with 2-space indentation, enough for the
/// SARIF shape below.  Keys are emitted in call order.
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS) : OS(OS) {}

  void openObject() { open('{'); }
  void closeObject() { close('}'); }
  void openArray() { open('['); }
  void closeArray() { close(']'); }

  void key(const std::string &K) {
    comma();
    indent();
    OS << '"' << jsonEscape(K) << "\": ";
    Pending = true;
  }

  void value(const std::string &V) {
    prefix();
    OS << '"' << jsonEscape(V) << '"';
  }
  void value(uint64_t V) {
    prefix();
    OS << V;
  }

private:
  void open(char C) {
    prefix();
    OS << C;
    NeedComma.push_back(false);
  }
  void close(char C) {
    NeedComma.pop_back();
    OS << "\n";
    indent();
    OS << C;
    if (NeedComma.empty())
      OS << "\n";
  }
  /// Emits the separator before a fresh value: nothing after a key, a
  /// comma+newline+indent between array elements.
  void prefix() {
    if (Pending) {
      Pending = false;
      return;
    }
    comma();
    indent();
  }
  void comma() {
    if (Pending)
      return;
    if (!NeedComma.empty()) {
      if (NeedComma.back())
        OS << ",";
      NeedComma.back() = true;
      OS << "\n";
    }
  }
  void indent() {
    for (size_t I = 0; I != NeedComma.size(); ++I)
      OS << "  ";
  }

  std::ostream &OS;
  std::vector<bool> NeedComma;
  bool Pending = false;
};

} // namespace

void pt::checks::writeSarif(std::ostream &OS, const Program &Prog,
                            const std::vector<Diagnostic> &Diags,
                            const std::vector<CheckerInfo> &Rules,
                            const SarifOptions &Opts) {
  std::string Uri =
      Prog.sourceName().empty() ? std::string("<input>") : Prog.sourceName();

  JsonWriter W(OS);
  W.openObject();
  W.key("$schema");
  W.value(std::string("https://raw.githubusercontent.com/oasis-tcs/"
                      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"));
  W.key("version");
  W.value(std::string("2.1.0"));
  W.key("runs");
  W.openArray();
  W.openObject();

  W.key("tool");
  W.openObject();
  W.key("driver");
  W.openObject();
  W.key("name");
  W.value(std::string("hybridpt-lint"));
  W.key("version");
  W.value(Opts.ToolVersion);
  W.key("informationUri");
  W.value(std::string("https://github.com/hybridpt/hybridpt"));
  W.key("rules");
  W.openArray();
  for (const CheckerInfo &R : Rules) {
    W.openObject();
    W.key("id");
    W.value(R.RuleId);
    W.key("name");
    W.value(R.Name);
    W.key("shortDescription");
    W.openObject();
    W.key("text");
    W.value(R.Summary);
    W.closeObject();
    W.key("defaultConfiguration");
    W.openObject();
    W.key("level");
    W.value(std::string(severityName(R.Sev)));
    W.closeObject();
    W.closeObject();
  }
  W.closeArray();
  W.closeObject(); // driver
  W.closeObject(); // tool

  if (!Opts.PolicyName.empty()) {
    W.key("properties");
    W.openObject();
    W.key("policy");
    W.value(Opts.PolicyName);
    W.closeObject();
  }

  W.key("results");
  W.openArray();
  for (const Diagnostic &D : Diags) {
    size_t RuleIndex = 0;
    for (size_t I = 0; I != Rules.size(); ++I)
      if (Rules[I].RuleId == D.RuleId)
        RuleIndex = I;

    W.openObject();
    W.key("ruleId");
    W.value(D.RuleId);
    W.key("ruleIndex");
    W.value(static_cast<uint64_t>(RuleIndex));
    W.key("level");
    W.value(std::string(severityName(D.Sev)));
    W.key("message");
    W.openObject();
    W.key("text");
    std::string Text = D.Message;
    for (const std::string &E : D.Evidence)
      Text += "\n" + E;
    W.value(Text);
    W.closeObject();
    W.key("locations");
    W.openArray();
    W.openObject();
    W.key("physicalLocation");
    W.openObject();
    W.key("artifactLocation");
    W.openObject();
    W.key("uri");
    W.value(Uri);
    W.closeObject();
    if (D.Line != 0) {
      W.key("region");
      W.openObject();
      W.key("startLine");
      W.value(static_cast<uint64_t>(D.Line));
      W.closeObject();
    }
    W.closeObject(); // physicalLocation
    if (D.Method.isValid()) {
      W.key("logicalLocations");
      W.openArray();
      W.openObject();
      W.key("fullyQualifiedName");
      W.value(Prog.qualifiedName(D.Method));
      W.key("kind");
      W.value(std::string("function"));
      W.closeObject();
      W.closeArray();
    }
    W.closeObject(); // location
    W.closeArray();  // locations
    // Derivation provenance as a codeFlow: one threadFlow whose locations
    // walk the anchored fact's derivation leaves-first (the "why" behind
    // the report; docs/OBSERVABILITY.md).  Only present when the lint run
    // recorded provenance and the checker anchored a fact.
    if (!D.Flow.empty()) {
      W.key("codeFlows");
      W.openArray();
      W.openObject();
      W.key("threadFlows");
      W.openArray();
      W.openObject();
      W.key("locations");
      W.openArray();
      for (const FlowStep &S : D.Flow) {
        W.openObject();
        W.key("location");
        W.openObject();
        W.key("physicalLocation");
        W.openObject();
        W.key("artifactLocation");
        W.openObject();
        W.key("uri");
        W.value(Uri);
        W.closeObject();
        if (S.Line != 0) {
          W.key("region");
          W.openObject();
          W.key("startLine");
          W.value(static_cast<uint64_t>(S.Line));
          W.closeObject();
        }
        W.closeObject(); // physicalLocation
        if (S.Method.isValid()) {
          W.key("logicalLocations");
          W.openArray();
          W.openObject();
          W.key("fullyQualifiedName");
          W.value(Prog.qualifiedName(S.Method));
          W.key("kind");
          W.value(std::string("function"));
          W.closeObject();
          W.closeArray();
        }
        W.key("message");
        W.openObject();
        W.key("text");
        W.value(S.Message);
        W.closeObject();
        W.closeObject(); // location
        W.closeObject(); // threadFlowLocation
      }
      W.closeArray();  // locations
      W.closeObject(); // threadFlow
      W.closeArray();  // threadFlows
      W.closeObject(); // codeFlow
      W.closeArray();  // codeFlows
    }
    W.key("partialFingerprints");
    W.openObject();
    W.key("hybridptSiteKey/v1");
    W.value(D.key());
    W.closeObject();
    W.closeObject(); // result
  }
  W.closeArray(); // results

  W.closeObject(); // run
  W.closeArray();  // runs
  W.closeObject(); // root
}
