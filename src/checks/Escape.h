//===- checks/Escape.h - Method-escape computation --------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes which allocation sites escape their allocating method, from the
/// context-insensitive projection of an analysis run.  An object escapes
/// when it flows out through a return, a static field, or a store into an
/// object that itself escapes (or that another method allocated).
///
/// The rules are monotone in the CI relations, so a more precise policy —
/// whose projections are subsets — proves at most as many escapes.  That
/// makes the escape checker a \c Direction::May citizen of the
/// monotonicity oracle.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_CHECKS_ESCAPE_H
#define HYBRIDPT_CHECKS_ESCAPE_H

#include "support/Ids.h"

#include <string>
#include <vector>

namespace pt {

class AnalysisResult;

namespace checks {

/// Escape verdict for one allocation site.
struct EscapeInfo {
  HeapId Heap;
  /// First-discovered reason the object escapes, for evidence rendering
  /// ("returned from <m>", "stored in static <f>", "stored in field <f> of
  /// escaping <h>").
  std::string Reason;
};

/// All heap sites that escape their allocating method, ordered by heap id.
/// Fixpoint over: (a) reachable into a static field, (b) pointed to by the
/// allocating method's return variable, (c) stored into a base object that
/// escapes or that was allocated in a different method.
std::vector<EscapeInfo> computeEscapes(const AnalysisResult &Result);

} // namespace checks
} // namespace pt

#endif // HYBRIDPT_CHECKS_ESCAPE_H
