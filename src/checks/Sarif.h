//===- checks/Sarif.h - SARIF 2.1.0 diagnostic output -----------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a diagnostic list as a SARIF 2.1.0 log — one run, the checker
/// metadata as the rule table, each diagnostic as a result with a physical
/// location (source file + line) and a logical location (the enclosing
/// method).  Output is deterministic: no timestamps, no GUIDs.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_CHECKS_SARIF_H
#define HYBRIDPT_CHECKS_SARIF_H

#include "checks/Checker.h"
#include "checks/Diagnostic.h"

#include <ostream>
#include <string>
#include <vector>

namespace pt {

class Program;

namespace checks {

/// Knobs of the SARIF rendering.
struct SarifOptions {
  /// tool.driver.version.
  std::string ToolVersion = "1.0.0";
  /// Recorded as a run property when non-empty (the context policy the
  /// diagnostics were produced under).
  std::string PolicyName;
};

/// Writes \p Diags as one SARIF 2.1.0 run.  \p Rules is the full rule
/// table (typically every registered checker's info, so ruleIndex stays
/// stable whether or not a rule fired).  Diagnostics must reference rules
/// present in \p Rules.
void writeSarif(std::ostream &OS, const Program &Prog,
                const std::vector<Diagnostic> &Diags,
                const std::vector<CheckerInfo> &Rules,
                const SarifOptions &Opts = {});

} // namespace checks
} // namespace pt

#endif // HYBRIDPT_CHECKS_SARIF_H
