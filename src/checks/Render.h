//===- checks/Render.h - Text and JSONL diagnostic output -------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable and line-oriented machine renderings of a diagnostic
/// list.  The SARIF rendering lives in Sarif.h.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_CHECKS_RENDER_H
#define HYBRIDPT_CHECKS_RENDER_H

#include "checks/Diagnostic.h"

#include <ostream>
#include <string>
#include <vector>

namespace pt {

class Program;

namespace checks {

/// Compiler-style text report, one diagnostic per block:
///
///   file.ptir:12: warning: [HPT004] cast of `x` to Circle may fail ...
///     may hold `new Square@3` (Square)
///
/// The location prefix degrades gracefully: `<input>` when the program has
/// no source name, no `:line` when the line is unknown.
void renderText(std::ostream &OS, const Program &Prog,
                const std::vector<Diagnostic> &Diags);

/// One JSON object per line per diagnostic, with keys rule, check, level,
/// siteKey, message, file, line, method, evidence, and (when non-empty)
/// \p PolicyName as "policy".  Deterministic key order.
void renderJsonl(std::ostream &OS, const Program &Prog,
                 const std::vector<Diagnostic> &Diags,
                 const std::string &PolicyName = {});

/// Escapes \p S for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(const std::string &S);

} // namespace checks
} // namespace pt

#endif // HYBRIDPT_CHECKS_RENDER_H
