//===- checks/Driver.h - Checker pipeline driver ----------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the checker pipeline: solve a program under a named context policy,
/// feed the result through a checker selection, collect sorted diagnostics.
/// Also the `--compare` engine, which diffs the diagnostic sets of two
/// policies on the same program and flags monotonicity violations (a May
/// report the refined policy introduces over the base).
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_CHECKS_DRIVER_H
#define HYBRIDPT_CHECKS_DRIVER_H

#include "checks/Checker.h"
#include "checks/Diagnostic.h"
#include "pta/AnalysisResult.h"
#include "pta/provenance/Provenance.h"
#include "support/Cancel.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace pt {

class AnalysisResult;
class ContextPolicy;
class Program;

namespace checks {

/// Options of one lint run.
struct LintOptions {
  /// Context policy name (see context/PolicyRegistry.h).
  std::string Policy = "2obj+H";
  /// Checker ids to run; empty = all registered checkers.
  std::vector<std::string> Checks;
  /// Solver budgets, 0 = unlimited.
  uint64_t TimeBudgetMs = 0;
  uint64_t MaxFacts = 0;
  uint64_t MemoryBudgetBytes = 0;
  /// Cooperative cancellation (^C / deadline); nullptr = none.  A
  /// cancelled run still renders and flushes its report, marked aborted.
  const CancelToken *Cancel = nullptr;
  /// Derivation provenance recorder.  When set, the solver records into it
  /// and diagnostics with "why" anchors get their derivation attached as
  /// \c Diagnostic::Flow (SARIF codeFlows).  The recorder must be empty;
  /// comparePolicies ignores it (two runs cannot share one arena).
  prov::Recorder *Prov = nullptr;
  /// Keep the solved result (and its policy) alive in the returned
  /// \c LintRun so callers can run post-lint provenance queries against it
  /// (`hybridpt-lint --why`); fact ids in \c Prov are only meaningful
  /// against this result's object tables.
  bool KeepResult = false;
};

/// Result of one lint run.
struct LintRun {
  std::vector<Diagnostic> Diags;
  /// Rule table of the checkers that ran (for SARIF output).
  std::vector<CheckerInfo> Rules;
  /// True when the solver hit a budget; diagnostics are then computed from
  /// an under-approximate fixpoint and must not be trusted.
  bool Aborted = false;
  /// Why the solver stopped short (\c AbortReason::None when it
  /// converged).
  AbortReason Reason = AbortReason::None;
  double SolveMs = 0.0;
  /// Non-empty on failure (unknown policy or checker id).
  std::string Error;
  /// Solved result and its policy, kept only under
  /// \c LintOptions::KeepResult.  The policy must outlive the result
  /// (validation re-computes context side conditions through it).
  std::unique_ptr<ContextPolicy> Policy;
  std::optional<AnalysisResult> Result;

  bool ok() const { return Error.empty(); }
};

/// Runs the selected checkers over an existing analysis result.  Unknown
/// checker ids produce an error result.
LintRun runCheckers(const AnalysisResult &Result,
                    const std::vector<std::string> &Checks = {});

/// Solves \p Prog under \c Opts.Policy, then runs the checkers.
LintRun lintProgram(const Program &Prog, const LintOptions &Opts = {});

/// Per-checker report-count delta between two policies.
struct CheckDelta {
  std::string CheckId;
  Direction Dir = Direction::May;
  size_t BaseCount = 0;
  size_t RefinedCount = 0;
  /// Report keys present under base but not refined (precision wins for
  /// May checkers).
  std::vector<std::string> Resolved;
  /// Report keys present under refined but not base.  For May checkers a
  /// non-empty list is a monotonicity violation.
  std::vector<std::string> Introduced;
};

/// Result of a `--compare base,refined` run.
struct CompareResult {
  std::string BasePolicy;
  std::string RefinedPolicy;
  LintRun Base;
  LintRun Refined;
  std::vector<CheckDelta> Deltas;
  std::string Error;

  bool ok() const { return Error.empty(); }

  /// Keys of May-checker reports the refined policy introduced — empty
  /// unless checker monotonicity is broken (or a run aborted, in which
  /// case the comparison is void and this stays empty).
  std::vector<std::string> monotonicityViolations() const;

  /// Total May-checker reports resolved minus introduced — the refinement's
  /// precision win.  Non-negative whenever monotonicity holds.
  int64_t reduction() const;
};

/// Lints \p Prog under both policies and diffs the diagnostic sets.
CompareResult comparePolicies(const Program &Prog, const std::string &Base,
                              const std::string &Refined,
                              const LintOptions &Opts = {});

/// Human-readable rendering of a comparison (per-checker table plus any
/// monotonicity violations).
void renderCompare(std::ostream &OS, const CompareResult &CR);

} // namespace checks
} // namespace pt

#endif // HYBRIDPT_CHECKS_DRIVER_H
