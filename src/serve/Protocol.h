//===- serve/Protocol.h - Daemon request protocol ---------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the resident analysis daemon (docs/SERVING.md):
/// newline-delimited JSON requests in, newline-delimited JSON replies out.
/// One request per line, one reply per request, correlated by a
/// client-chosen numeric "id".
///
/// Request shape:
///
///   {"id":1,"kind":"points-to","var":"A::main/0::x","policy":"2obj+H"}
///   {"id":2,"kind":"callgraph","policy":"insens"}
///   {"id":3,"kind":"lint","checks":["casts"]}
///   {"id":4,"kind":"compare","base":"insens","refined":"2obj+H"}
///   {"id":5,"kind":"reload","program":"examples/programs/factory.ptir"}
///   {"id":6,"kind":"health"}
///   {"id":7,"kind":"drain"}
///
/// Work requests optionally carry per-request guard overrides:
/// "deadline_ms" (wall-clock reply deadline), "budget_ms" (solver time
/// budget), "max_facts", "max_memory_mb".  Unknown keys are tolerated (a
/// newer client may talk to an older daemon); known keys of the wrong type
/// are a protocol error.
///
/// Validation is strict and total: every malformed line yields a
/// structured error reply naming an \c ErrorCode — the daemon never
/// crashes, never closes the connection, and answers the next request
/// as if the bad one had not happened.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_SERVE_PROTOCOL_H
#define HYBRIDPT_SERVE_PROTOCOL_H

#include "support/Json.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pt::serve {

/// The request kinds the daemon answers.
enum class RequestKind : uint8_t {
  PointsTo,  ///< Points-to set of one variable ("var").
  CallGraph, ///< Table 1 metric row (CSV, shared renderer with --csv).
  Lint,      ///< Checker-suite diagnostics as JSONL lines.
  Compare,   ///< Policy precision diff ("base" vs "refined").
  Reload,    ///< Load a new program epoch; invalidates the cache.
  Health,    ///< Liveness + counters; answered inline, never queued.
  Drain,     ///< Stop admitting; in-flight requests still complete.
};

/// "points-to", "callgraph", "lint", "compare", "reload", "health",
/// "drain".
const char *kindName(RequestKind K);

/// Parses a kind name; false on unknown names (\p Out untouched).
bool kindByName(std::string_view Name, RequestKind &Out);

/// True for kinds that go through the admission queue and solver.
inline bool isWorkKind(RequestKind K) {
  return K == RequestKind::PointsTo || K == RequestKind::CallGraph ||
         K == RequestKind::Lint || K == RequestKind::Compare;
}

/// Machine-readable failure classes, stamped on every non-ok reply as
/// "code" so clients can branch without parsing messages.
enum class ErrorCode : uint8_t {
  None,
  BadRequest,    ///< Malformed JSON / missing or mistyped field.
  UnknownKind,   ///< "kind" names no request kind.
  UnknownPolicy, ///< Policy name not in the registry.
  UnknownVar,    ///< points-to "var" path resolves to no variable.
  BadProgram,    ///< reload target missing or failed to parse.
  Overloaded,    ///< Admission queue full; reply carries retry_after_ms.
  Draining,      ///< Daemon is draining; no new work admitted.
  Budget,        ///< Solver budget blown and no ladder rung converged.
  Cancelled,     ///< Per-request deadline or process shutdown tripped.
  Internal,      ///< Unexpected failure; daemon stays up.
};

/// "bad-request", "unknown-kind", ..., "internal".
const char *errorCodeName(ErrorCode C);

/// One parsed request.  String fields are empty when absent; numeric
/// guard overrides are 0 when absent (= use the server default).
struct Request {
  uint64_t Id = 0;
  RequestKind Kind = RequestKind::Health;
  std::string Policy;              ///< points-to / callgraph / lint.
  std::string Base, Refined;       ///< compare.
  std::string Var;                 ///< points-to.
  std::vector<std::string> Checks; ///< lint / compare checker selection.
  std::string Program;             ///< reload target (empty = same spec).
  uint64_t DeadlineMs = 0;
  uint64_t BudgetMs = 0;
  uint64_t MaxFacts = 0;
  uint64_t MaxMemoryMb = 0;
};

/// Hard limits on a single request line, layered over the JSON parser's
/// own \c json::ParseLimits.
struct ProtocolLimits {
  size_t MaxLineBytes = 1 << 20;
  size_t MaxChecks = 64;
  json::ParseLimits Json;
};

/// Parses one request line.  On failure returns false and fills \p Code /
/// \p Error; \p Out.Id is still filled when the line carried a readable
/// id, so the error reply can be correlated.
bool parseRequest(std::string_view Line, Request &Out, ErrorCode &Code,
                  std::string &Error, const ProtocolLimits &Limits = {});

} // namespace pt::serve

#endif // HYBRIDPT_SERVE_PROTOCOL_H
