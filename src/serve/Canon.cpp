//===- serve/Canon.cpp ---------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Canon.h"

#include "checks/Driver.h"
#include "checks/Render.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "pta/Metrics.h"

#include <sstream>

using namespace pt;
using namespace pt::serve;

std::vector<std::string> pt::serve::splitLines(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos) {
      Out.push_back(Text.substr(Pos));
      break;
    }
    Out.push_back(Text.substr(Pos, End - Pos));
    Pos = End + 1;
  }
  return Out;
}

std::vector<std::string> pt::serve::pointsToLines(const Program &P,
                                                  const AnalysisResult &R,
                                                  VarId V) {
  std::vector<std::string> Out;
  for (HeapId H : R.pointsTo(V))
    Out.push_back(std::string(P.text(P.heap(H).Name)) + " : " +
                  std::string(P.text(P.type(P.heap(H).Type).Name)));
  return Out;
}

std::vector<std::string>
pt::serve::lintLines(const Program &P,
                     const std::vector<checks::Diagnostic> &Diags,
                     const std::string &Policy) {
  std::ostringstream OS;
  checks::renderJsonl(OS, P, Diags, Policy);
  return splitLines(OS.str());
}

std::vector<std::string>
pt::serve::callGraphLines(const PrecisionMetrics &M,
                          const std::string &Policy) {
  return {metricsCsvHeader(/*Taint=*/false, /*WithTime=*/false),
          metricsCsvRow(M, Policy, /*Taint=*/false, /*WithTime=*/false)};
}

std::vector<std::string>
pt::serve::compareLines(const checks::CompareResult &CR) {
  std::ostringstream OS;
  checks::renderCompare(OS, CR);
  return splitLines(OS.str());
}
