//===- serve/Server.h - Resident analysis server ----------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-tolerant core of the resident analysis daemon
/// (docs/SERVING.md).  A \c Server owns the current program epoch, a
/// bounded admission queue drained by a worker pool, and the LRU result
/// cache; the front doors (stdio NDJSON, unix socket — see
/// tools/hybridpt_serve.cpp) feed request lines in and pass a reply sink
/// out, so every transport shares one robustness story:
///
///  - **Strict admission.**  Malformed lines are answered with structured
///    error replies without consuming a queue slot.  A full queue sheds
///    the request ("overloaded" + retry_after_ms) instead of growing
///    without bound; a draining server rejects new work ("draining") while
///    in-flight requests complete.
///  - **Per-request guards.**  Every work request runs under its own
///    re-armable \c CancelToken (deadline from the request or the server
///    default) chained to the process token, plus solver time/fact/memory
///    budgets.  A budget-blown solve descends the fallback ladder and the
///    reply says so ("degraded": requested vs landed policy); cancellation
///    never ladders (docs/ROBUSTNESS.md) and yields a "cancelled" error.
///  - **Epoch snapshots.**  Requests capture their epoch at admission;
///    reload swaps the epoch and clears the cache atomically while
///    in-flight requests finish against the old program (serve/Epoch.h).
///  - **Fault injection.**  A \c RequestFaultPlan maps admitted-request
///    ordinals to solver fault plans; a faulted request bypasses the cache
///    in both directions (never reads a clean answer, never poisons the
///    cache) so its neighbors stay bit-identical to batch runs.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_SERVE_SERVER_H
#define HYBRIDPT_SERVE_SERVER_H

#include "pta/Solver.h"
#include "pta/Trace.h"
#include "serve/Epoch.h"
#include "serve/Protocol.h"
#include "support/Cancel.h"
#include "support/FaultPlan.h"
#include "support/Timer.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace pt::serve {

/// Tuning knobs of one server instance.
struct ServerOptions {
  /// Program to load as epoch 1 (benchmark name or PTIR file).
  std::string ProgramSpec;
  /// Policy used when a request names none.
  std::string DefaultPolicy = "2obj+H";
  /// Worker threads draining the admission queue.
  unsigned Workers = 2;
  /// Admission queue bound; a full queue sheds ("overloaded").
  size_t QueueLimit = 64;
  /// Result cache capacity in entries.
  size_t CacheEntries = 32;
  /// Default per-request wall-clock deadline (0 = none).
  uint64_t DefaultDeadlineMs = 0;
  /// Default solver budgets (0 = unlimited), overridable per request.
  uint64_t DefaultBudgetMs = 0;
  uint64_t DefaultMaxFacts = 0;
  uint64_t DefaultMaxMemoryMb = 0;
  /// Suggested client back-off stamped on shed replies.
  uint64_t RetryAfterMs = 50;
  /// Descend the fallback ladder on budget-blown solves.
  bool UseLadder = true;
  SolverEngine Engine = SolverEngine::Worklist;
  unsigned SolverThreads = 1;
  /// Per-request fault schedule (testing; docs/ROBUSTNESS.md).
  RequestFaultPlan Faults;
  /// Request-latency trace sink; may be null.
  trace::TraceRecorder *Trace = nullptr;
  /// Process-wide cancel token (SIGINT); chained under every per-request
  /// token so one trip cancels all in-flight work.  May be null.
  const CancelToken *ProcessCancel = nullptr;
};

/// The resident server core.  Thread-safe: front doors may call
/// \c handleLine concurrently from any number of transport threads.
class Server {
public:
  /// Reply sink: receives one complete JSON line (no trailing newline).
  /// Must be thread-safe — workers call it from the pool.
  using ReplyFn = std::function<void(const std::string &)>;

  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Loads epoch 1 and spawns the workers.  False + \p Error on failure.
  bool start(std::string &Error);

  /// Handles one request line: replies inline (errors, health, drain,
  /// reload, shed) or enqueues work.  Returns false when the line was a
  /// drain request — the transport should stop reading and call
  /// \c drain().
  bool handleLine(std::string_view Line, ReplyFn Reply);

  /// Stops admitting new work and blocks until the queue is empty and all
  /// in-flight requests have replied.
  void drain();

  /// Drains and joins the workers.  Idempotent; the destructor calls it.
  void shutdown();

  bool draining() const;
  uint64_t epochId() const;

  struct Stats {
    uint64_t Admitted = 0; ///< Work requests accepted into the queue.
    uint64_t Replied = 0;  ///< Work requests answered (ok or error).
    uint64_t Shed = 0;     ///< Rejected on a full queue.
    uint64_t Errors = 0;   ///< Non-ok work replies (incl. cancelled).
    uint64_t Degraded = 0; ///< Ok replies that landed a ladder rung.
    uint64_t Faulted = 0;  ///< Requests that ran under an injected plan.
  };
  Stats stats() const;
  ResultCache::Stats cacheStats() const { return Cache.stats(); }

private:
  struct Job {
    Request Req;
    ReplyFn Reply;
    std::shared_ptr<const Epoch> Ep;
    uint64_t Ordinal = 0; ///< Admission ordinal (fault-plan key).
    double AdmitMs = 0.0;
    double DispatchMs = 0.0;
  };

  /// Outcome of one executed work request, folded into the reply.
  struct Outcome {
    bool Ok = false;
    ErrorCode Code = ErrorCode::Internal;
    std::string Error;
    std::vector<std::string> Lines;
    std::string Policy;       ///< Policy the answer describes.
    std::string FallbackFrom; ///< Non-empty on a degraded answer.
    bool CacheHit = false;
    bool Faulted = false;
  };

  void workerLoop();
  void execute(Job &Job);
  Outcome runWork(const Job &Job, CancelToken &Tok, const FaultPlan *Fault);

  /// The solve behind points-to/callgraph/lint: cache-aware, in-flight
  /// deduplicated, ladder-enabled.  On failure fills \p Out's error
  /// fields and returns nullptr.
  std::shared_ptr<const CacheEntry> solveCell(const Job &Job,
                                              const std::string &Policy,
                                              CancelToken &Tok,
                                              const FaultPlan *Fault,
                                              Outcome &Out);

  Outcome runPointsTo(const Job &Job, CancelToken &Tok,
                      const FaultPlan *Fault);
  Outcome runCallGraph(const Job &Job, CancelToken &Tok,
                       const FaultPlan *Fault);
  Outcome runLint(const Job &Job, CancelToken &Tok, const FaultPlan *Fault);
  Outcome runCompare(const Job &Job, CancelToken &Tok,
                     const FaultPlan *Fault);

  std::string handleHealth(const Request &Req);
  std::string handleReload(const Request &Req);

  SolverOptions solverOptions(const Request &Req, CancelToken &Tok,
                              const FaultPlan *Fault) const;
  std::string requestedPolicy(const Request &Req) const {
    return Req.Policy.empty() ? Opts.DefaultPolicy : Req.Policy;
  }

  ServerOptions Opts;
  Stopwatch Clock;
  ResultCache Cache;

  mutable std::mutex Mu;
  std::condition_variable QueueCv; ///< Workers wait for jobs.
  std::condition_variable IdleCv;  ///< drain() waits for quiescence.
  std::deque<Job> Queue;
  std::vector<std::thread> Pool;
  std::shared_ptr<const Epoch> Current;
  uint64_t NextEpochId = 1;
  uint64_t WorkOrdinal = 0;
  size_t InFlight = 0;
  bool Draining = false;
  bool Stopping = false;
  bool Started = false;
  Stats Counters;

  /// In-flight solve dedup: a second request for a key being solved waits
  /// for the first instead of burning a worker on the same fixpoint.
  std::mutex GateMu;
  std::condition_variable GateCv;
  std::set<std::string> SolvingKeys;
};

} // namespace pt::serve

#endif // HYBRIDPT_SERVE_SERVER_H
