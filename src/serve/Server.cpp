//===- serve/Server.cpp --------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "checks/Driver.h"
#include "context/PolicyRegistry.h"
#include "ir/Program.h"
#include "irtext/TextFormat.h"
#include "pta/Degrade.h"
#include "serve/Canon.h"
#include "support/Json.h"

#include <algorithm>
#include <exception>
#include <sstream>

using namespace pt;
using namespace pt::serve;

namespace {

std::string joinChecks(const std::vector<std::string> &Checks) {
  if (Checks.empty())
    return "all";
  std::string Out;
  for (const std::string &C : Checks) {
    if (!Out.empty())
      Out += ',';
    Out += C;
  }
  return Out;
}

void appendLinesJson(std::ostringstream &OS,
                     const std::vector<std::string> &Lines) {
  OS << "\"count\":" << Lines.size() << ",\"lines\":[";
  for (size_t I = 0; I < Lines.size(); ++I)
    OS << (I ? "," : "") << '"' << json::escape(Lines[I]) << '"';
  OS << ']';
}

} // namespace

Server::Server(ServerOptions Opts)
    : Opts(std::move(Opts)), Cache(this->Opts.CacheEntries) {}

Server::~Server() { shutdown(); }

bool Server::start(std::string &Error) {
  std::shared_ptr<const Epoch> Ep = loadEpoch(1, Opts.ProgramSpec, Error);
  if (!Ep)
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  Current = std::move(Ep);
  NextEpochId = 2;
  unsigned Workers = std::max(1u, Opts.Workers);
  Pool.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Pool.emplace_back([this] { workerLoop(); });
  Started = true;
  return true;
}

bool Server::draining() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Draining;
}

uint64_t Server::epochId() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Current ? Current->Id : 0;
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}

void Server::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  Draining = true;
  IdleCv.wait(Lock, [this] { return Queue.empty() && InFlight == 0; });
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Started)
      return;
  }
  drain();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &T : Pool)
    T.join();
  Pool.clear();
  std::lock_guard<std::mutex> Lock(Mu);
  Started = false;
}

bool Server::handleLine(std::string_view Line, ReplyFn Reply) {
  Request Req;
  ErrorCode Code = ErrorCode::None;
  std::string Error;
  if (!parseRequest(Line, Req, Code, Error)) {
    // Malformed input never crashes and never consumes a queue slot: one
    // structured error reply, then the next request proceeds untouched.
    std::ostringstream OS;
    OS << "{\"id\":" << Req.Id << ",\"ok\":false,\"code\":\""
       << errorCodeName(Code) << "\",\"error\":\"" << json::escape(Error)
       << "\"}";
    Reply(OS.str());
    return true;
  }

  if (Req.Kind == RequestKind::Health) {
    Reply(handleHealth(Req));
    return true;
  }
  if (Req.Kind == RequestKind::Drain) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Draining = true;
    }
    std::ostringstream OS;
    OS << "{\"id\":" << Req.Id
       << ",\"ok\":true,\"kind\":\"drain\",\"draining\":true}";
    Reply(OS.str());
    return false;
  }
  if (Req.Kind == RequestKind::Reload) {
    Reply(handleReload(Req));
    return true;
  }

  // Work request: admit or shed.
  Job J;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Draining || Stopping) {
      std::ostringstream OS;
      OS << "{\"id\":" << Req.Id << ",\"ok\":false,\"kind\":\""
         << kindName(Req.Kind) << "\",\"code\":\""
         << errorCodeName(ErrorCode::Draining)
         << "\",\"error\":\"server is draining; no new work admitted\"}";
      Reply(OS.str());
      return true;
    }
    if (Queue.size() >= Opts.QueueLimit) {
      ++Counters.Shed;
      if (Opts.Trace) {
        trace::RequestRecord R;
        R.Id = Req.Id;
        R.Kind = kindName(Req.Kind);
        R.EpochId = Current ? Current->Id : 0;
        R.Outcome = "shed";
        R.Code = errorCodeName(ErrorCode::Overloaded);
        Opts.Trace->request(R);
      }
      std::ostringstream OS;
      OS << "{\"id\":" << Req.Id << ",\"ok\":false,\"kind\":\""
         << kindName(Req.Kind) << "\",\"code\":\""
         << errorCodeName(ErrorCode::Overloaded)
         << "\",\"error\":\"admission queue full ("
         << Opts.QueueLimit << " deep); back off and retry\""
         << ",\"retry_after_ms\":" << Opts.RetryAfterMs << '}';
      Reply(OS.str());
      return true;
    }
    J.Req = std::move(Req);
    J.Reply = std::move(Reply);
    J.Ep = Current;
    J.Ordinal = ++WorkOrdinal;
    J.AdmitMs = Clock.elapsedMs();
    ++Counters.Admitted;
    Queue.push_back(std::move(J));
  }
  QueueCv.notify_one();
  return true;
}

std::string Server::handleHealth(const Request &Req) {
  ResultCache::Stats CS = Cache.stats();
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "{\"id\":" << Req.Id << ",\"ok\":true,\"kind\":\"health\""
     << ",\"epoch\":" << (Current ? Current->Id : 0) << ",\"program\":\""
     << json::escape(Current ? Current->Spec : "") << "\",\"draining\":"
     << (Draining ? "true" : "false") << ",\"workers\":" << Pool.size()
     << ",\"queue_depth\":" << Queue.size()
     << ",\"queue_limit\":" << Opts.QueueLimit
     << ",\"in_flight\":" << InFlight
     << ",\"admitted\":" << Counters.Admitted
     << ",\"replied\":" << Counters.Replied << ",\"shed\":" << Counters.Shed
     << ",\"errors\":" << Counters.Errors
     << ",\"degraded\":" << Counters.Degraded
     << ",\"faulted\":" << Counters.Faulted << ",\"cache\":{\"entries\":"
     << CS.Entries << ",\"capacity\":" << CS.Capacity << ",\"hits\":"
     << CS.Hits << ",\"misses\":" << CS.Misses << ",\"evictions\":"
     << CS.Evictions << "}}";
  return OS.str();
}

std::string Server::handleReload(const Request &Req) {
  std::string Spec = Req.Program;
  uint64_t NewId = 0;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Draining || Stopping) {
      std::ostringstream OS;
      OS << "{\"id\":" << Req.Id << ",\"ok\":false,\"kind\":\"reload\""
         << ",\"code\":\"" << errorCodeName(ErrorCode::Draining)
         << "\",\"error\":\"server is draining; no new work admitted\"}";
      return OS.str();
    }
    if (Spec.empty() && Current)
      Spec = Current->Spec;
    NewId = NextEpochId++;
  }

  // Load outside the lock: parsing can take a while and must not stall
  // admission or health probes.  A failed load leaves the current epoch
  // untouched — the daemon never serves a half-loaded program.
  std::string Error;
  std::shared_ptr<const Epoch> Ep = loadEpoch(NewId, Spec, Error);
  if (!Ep) {
    std::ostringstream OS;
    OS << "{\"id\":" << Req.Id << ",\"ok\":false,\"kind\":\"reload\""
       << ",\"code\":\"" << errorCodeName(ErrorCode::BadProgram)
       << "\",\"error\":\"" << json::escape(Error) << "\"}";
    return OS.str();
  }

  uint64_t Live = 0;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    // Swap-if-newer: two racing reloads resolve to the higher epoch id, so
    // the epoch clock never runs backwards.
    if (!Current || Ep->Id > Current->Id) {
      Current = std::move(Ep);
      Cache.clear(); // Atomic invalidation: the new epoch starts cold.
    }
    Live = Current->Id;
  }
  std::ostringstream OS;
  OS << "{\"id\":" << Req.Id << ",\"ok\":true,\"kind\":\"reload\""
     << ",\"epoch\":" << Live << ",\"program\":\"" << json::escape(Spec)
     << "\"}";
  return OS.str();
}

void Server::workerLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stopping)
          return;
        continue;
      }
      J = std::move(Queue.front());
      Queue.pop_front();
      ++InFlight;
    }
    J.DispatchMs = Clock.elapsedMs();
    execute(J);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --InFlight;
    }
    IdleCv.notify_all();
  }
}

SolverOptions Server::solverOptions(const Request &Req, CancelToken &Tok,
                                    const FaultPlan *Fault) const {
  SolverOptions SOpts;
  SOpts.TimeBudgetMs = Req.BudgetMs ? Req.BudgetMs : Opts.DefaultBudgetMs;
  SOpts.MaxFacts = Req.MaxFacts ? Req.MaxFacts : Opts.DefaultMaxFacts;
  uint64_t MemMb =
      Req.MaxMemoryMb ? Req.MaxMemoryMb : Opts.DefaultMaxMemoryMb;
  SOpts.MemoryBudgetBytes = MemMb * 1000000;
  SOpts.Cancel = &Tok;
  if (Fault)
    SOpts.Faults = *Fault;
  SOpts.Engine = Opts.Engine;
  SOpts.SummaryThreads = Opts.SolverThreads;
  return SOpts;
}

std::shared_ptr<const CacheEntry>
Server::solveCell(const Job &Job, const std::string &Policy, CancelToken &Tok,
                  const FaultPlan *Fault, Outcome &Out) {
  const Program &P = *Job.Ep->Prog;
  const std::string Key =
      "solve/e" + std::to_string(Job.Ep->Id) + "/" + Policy;
  const bool Cacheable = Fault == nullptr;

  // In-flight dedup: the first requester solves, concurrent requesters for
  // the same key wait and read the published entry instead of burning a
  // worker on the same fixpoint.  Faulted requests bypass the gate AND the
  // cache in both directions — they must not read a clean answer, and
  // their (possibly degraded) result must never poison the cache.
  struct Gate {
    Server *S = nullptr;
    const std::string *Key = nullptr;
    ~Gate() {
      if (!S)
        return;
      {
        std::lock_guard<std::mutex> Lock(S->GateMu);
        S->SolvingKeys.erase(*Key);
      }
      S->GateCv.notify_all();
    }
  } Held;

  if (Cacheable) {
    std::unique_lock<std::mutex> Lock(GateMu);
    for (;;) {
      if (std::shared_ptr<const CacheEntry> E = Cache.get(Key)) {
        Out.CacheHit = true;
        return E;
      }
      if (!SolvingKeys.count(Key)) {
        SolvingKeys.insert(Key);
        Held.S = this;
        Held.Key = &Key;
        break;
      }
      GateCv.wait(Lock);
    }
  }

  if (!createPolicy(Policy, P)) {
    Out.Code = ErrorCode::UnknownPolicy;
    Out.Error = "unknown policy '" + Policy + "'";
    return nullptr;
  }

  SolverOptions SOpts = solverOptions(Job.Req, Tok, Fault);
  auto Entry = std::make_shared<CacheEntry>();
  Entry->Ep = Job.Ep;
  if (Opts.UseLadder) {
    LadderResult LR = solveWithLadder(P, Policy, SOpts, {});
    if (!LR.Result) {
      Out.Code = ErrorCode::Internal;
      Out.Error = LR.Error;
      return nullptr;
    }
    Entry->Policy = std::move(LR.Policy);
    Entry->Result = std::move(LR.Result);
    Entry->LandedPolicy = LR.LandedPolicy;
    Entry->FallbackFrom = LR.FallbackFrom;
  } else {
    Entry->Policy = createPolicy(Policy, P);
    Entry->Result.emplace(solveProgram(P, *Entry->Policy, SOpts));
    Entry->LandedPolicy = Policy;
  }

  if (Entry->Result->Aborted) {
    if (Entry->Result->Reason == AbortReason::Cancelled) {
      // Cancellation never ladders (the client wants out, not a coarser
      // answer): structured "cancelled" error.
      Out.Code = ErrorCode::Cancelled;
      Out.Error = "request cancelled (deadline or shutdown)";
    } else {
      Out.Code = ErrorCode::Budget;
      Out.Error = std::string("solver budget exhausted (") +
                  abortReasonName(Entry->Result->Reason) +
                  (Opts.UseLadder ? "; ladder exhausted)" : ")");
    }
    return nullptr;
  }

  Entry->Metrics = computeMetrics(*Entry->Result);
  // Publish only converged, native, fault-free results: a degraded answer
  // must not satisfy a later request that could afford the real one.
  if (Cacheable && Entry->FallbackFrom.empty())
    Cache.put(Key, Entry);
  return Entry;
}

Server::Outcome Server::runPointsTo(const Job &Job, CancelToken &Tok,
                                    const FaultPlan *Fault) {
  Outcome Out;
  const Program &P = *Job.Ep->Prog;
  VarId V = findVarByPath(P, Job.Req.Var);
  if (!V.isValid()) {
    Out.Code = ErrorCode::UnknownVar;
    Out.Error = "no variable '" + Job.Req.Var + "'";
    return Out;
  }
  std::shared_ptr<const CacheEntry> E =
      solveCell(Job, requestedPolicy(Job.Req), Tok, Fault, Out);
  if (!E)
    return Out;
  Out.Ok = true;
  Out.Policy = E->LandedPolicy;
  Out.FallbackFrom = E->FallbackFrom;
  Out.Lines = pointsToLines(P, *E->Result, V);
  return Out;
}

Server::Outcome Server::runCallGraph(const Job &Job, CancelToken &Tok,
                                     const FaultPlan *Fault) {
  Outcome Out;
  std::shared_ptr<const CacheEntry> E =
      solveCell(Job, requestedPolicy(Job.Req), Tok, Fault, Out);
  if (!E)
    return Out;
  Out.Ok = true;
  Out.Policy = E->LandedPolicy;
  Out.FallbackFrom = E->FallbackFrom;
  Out.Lines = callGraphLines(E->Metrics, E->LandedPolicy);
  return Out;
}

Server::Outcome Server::runLint(const Job &Job, CancelToken &Tok,
                                const FaultPlan *Fault) {
  Outcome Out;
  const std::string Policy = requestedPolicy(Job.Req);
  const std::string Key = "lint/e" + std::to_string(Job.Ep->Id) + "/" +
                          Policy + "/" + joinChecks(Job.Req.Checks);
  if (!Fault) {
    if (std::shared_ptr<const CacheEntry> E = Cache.get(Key)) {
      Out.Ok = true;
      Out.CacheHit = true;
      Out.Policy = E->LandedPolicy;
      Out.Lines = E->Lines;
      return Out;
    }
  }
  std::shared_ptr<const CacheEntry> SC =
      solveCell(Job, Policy, Tok, Fault, Out);
  if (!SC)
    return Out;
  checks::LintRun Run = checks::runCheckers(*SC->Result, Job.Req.Checks);
  if (!Run.ok()) {
    Out.Code = ErrorCode::BadRequest;
    Out.Error = Run.Error;
    return Out;
  }
  Out.Ok = true;
  Out.Policy = SC->LandedPolicy;
  Out.FallbackFrom = SC->FallbackFrom;
  Out.Lines = lintLines(*Job.Ep->Prog, Run.Diags, SC->LandedPolicy);
  if (!Fault && SC->FallbackFrom.empty()) {
    auto E = std::make_shared<CacheEntry>();
    E->Ep = Job.Ep;
    E->LandedPolicy = SC->LandedPolicy;
    E->Lines = Out.Lines;
    Cache.put(Key, E);
  }
  return Out;
}

Server::Outcome Server::runCompare(const Job &Job, CancelToken &Tok,
                                   const FaultPlan *Fault) {
  Outcome Out;
  (void)Fault; // Compare solves twice through the checks driver, which has
               // no fault hook; the replay driver schedules faults onto
               // the other kinds.
  const Program &P = *Job.Ep->Prog;
  for (const std::string &Name : {Job.Req.Base, Job.Req.Refined}) {
    if (!createPolicy(Name, P)) {
      Out.Code = ErrorCode::UnknownPolicy;
      Out.Error = "unknown policy '" + Name + "'";
      return Out;
    }
  }
  const std::string Key = "compare/e" + std::to_string(Job.Ep->Id) + "/" +
                          Job.Req.Base + "/" + Job.Req.Refined + "/" +
                          joinChecks(Job.Req.Checks);
  if (std::shared_ptr<const CacheEntry> E = Cache.get(Key)) {
    Out.Ok = true;
    Out.CacheHit = true;
    Out.Policy = E->LandedPolicy;
    Out.Lines = E->Lines;
    return Out;
  }
  checks::LintOptions LO;
  LO.Checks = Job.Req.Checks;
  LO.TimeBudgetMs =
      Job.Req.BudgetMs ? Job.Req.BudgetMs : Opts.DefaultBudgetMs;
  LO.MaxFacts = Job.Req.MaxFacts ? Job.Req.MaxFacts : Opts.DefaultMaxFacts;
  LO.MemoryBudgetBytes =
      (Job.Req.MaxMemoryMb ? Job.Req.MaxMemoryMb : Opts.DefaultMaxMemoryMb) *
      1000000;
  LO.Cancel = &Tok;
  checks::CompareResult CR =
      checks::comparePolicies(P, Job.Req.Base, Job.Req.Refined, LO);
  if (!CR.ok()) {
    Out.Code = ErrorCode::Internal;
    Out.Error = CR.Error;
    return Out;
  }
  if (CR.Base.Aborted || CR.Refined.Aborted) {
    AbortReason Reason =
        CR.Base.Aborted ? CR.Base.Reason : CR.Refined.Reason;
    if (Reason == AbortReason::Cancelled) {
      Out.Code = ErrorCode::Cancelled;
      Out.Error = "request cancelled (deadline or shutdown)";
    } else {
      Out.Code = ErrorCode::Budget;
      Out.Error = std::string("comparison aborted (") +
                  abortReasonName(Reason) + ")";
    }
    return Out;
  }
  Out.Ok = true;
  Out.Policy = Job.Req.Base + "->" + Job.Req.Refined;
  Out.Lines = compareLines(CR);
  auto E = std::make_shared<CacheEntry>();
  E->Ep = Job.Ep;
  E->LandedPolicy = Out.Policy;
  E->Lines = Out.Lines;
  Cache.put(Key, E);
  return Out;
}

Server::Outcome Server::runWork(const Job &Job, CancelToken &Tok,
                                const FaultPlan *Fault) {
  switch (Job.Req.Kind) {
  case RequestKind::PointsTo:
    return runPointsTo(Job, Tok, Fault);
  case RequestKind::CallGraph:
    return runCallGraph(Job, Tok, Fault);
  case RequestKind::Lint:
    return runLint(Job, Tok, Fault);
  case RequestKind::Compare:
    return runCompare(Job, Tok, Fault);
  default:
    break;
  }
  Outcome Out;
  Out.Code = ErrorCode::Internal;
  Out.Error = "non-work kind reached the worker pool";
  return Out;
}

void Server::execute(Job &J) {
  // Per-request guard: a fresh token chained under the process token, armed
  // with the request's deadline (or the server default).  The token is
  // re-armable by design (support/Cancel.h) but each request gets its own —
  // guards must not leak across requests.
  CancelToken Tok(Opts.ProcessCancel);
  uint64_t DeadlineMs =
      J.Req.DeadlineMs ? J.Req.DeadlineMs : Opts.DefaultDeadlineMs;
  if (DeadlineMs != 0)
    Tok.setDeadlineMs(DeadlineMs);
  const FaultPlan *Fault = Opts.Faults.planForRequest(J.Ordinal);

  Outcome Out;
  try {
    Out = runWork(J, Tok, Fault);
  } catch (const std::exception &E) {
    Out = Outcome{};
    Out.Code = ErrorCode::Internal;
    Out.Error = std::string("unexpected exception: ") + E.what();
  } catch (...) {
    Out = Outcome{};
    Out.Code = ErrorCode::Internal;
    Out.Error = "unexpected non-standard exception";
  }
  Out.Faulted = Fault != nullptr;

  std::ostringstream OS;
  if (Out.Ok) {
    OS << "{\"id\":" << J.Req.Id << ",\"ok\":true,\"kind\":\""
       << kindName(J.Req.Kind) << "\",\"epoch\":" << J.Ep->Id
       << ",\"policy\":\"" << json::escape(Out.Policy) << '"';
    if (!J.Req.Var.empty())
      OS << ",\"var\":\"" << json::escape(J.Req.Var) << '"';
    OS << ",\"cache_hit\":" << (Out.CacheHit ? "true" : "false");
    if (Out.Faulted)
      OS << ",\"faulted\":true";
    if (!Out.FallbackFrom.empty())
      OS << ",\"degraded\":{\"from\":\"" << json::escape(Out.FallbackFrom)
         << "\",\"landed\":\"" << json::escape(Out.Policy) << "\"}";
    OS << ',';
    appendLinesJson(OS, Out.Lines);
    OS << '}';
  } else {
    OS << "{\"id\":" << J.Req.Id << ",\"ok\":false,\"kind\":\""
       << kindName(J.Req.Kind) << "\",\"epoch\":" << J.Ep->Id
       << ",\"code\":\"" << errorCodeName(Out.Code) << '"';
    if (Out.Faulted)
      OS << ",\"faulted\":true";
    OS << ",\"error\":\"" << json::escape(Out.Error) << "\"}";
  }

  double Now = Clock.elapsedMs();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counters.Replied;
    if (!Out.Ok)
      ++Counters.Errors;
    if (!Out.FallbackFrom.empty())
      ++Counters.Degraded;
    if (Out.Faulted)
      ++Counters.Faulted;
  }
  if (Opts.Trace) {
    trace::RequestRecord R;
    R.Id = J.Req.Id;
    R.Kind = kindName(J.Req.Kind);
    R.Policy = Out.Policy;
    R.EpochId = J.Ep->Id;
    R.Outcome = Out.Ok ? (Out.FallbackFrom.empty() ? "ok" : "degraded")
                       : "error";
    R.Code = Out.Ok ? "" : errorCodeName(Out.Code);
    R.CacheHit = Out.CacheHit;
    R.QueueMs = J.DispatchMs - J.AdmitMs;
    R.LatencyMs = Now - J.AdmitMs;
    Opts.Trace->request(R);
  }
  J.Reply(OS.str());
}
