//===- serve/Epoch.h - Program epochs and the result cache ------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe program epochs for the resident daemon (docs/SERVING.md).
///
/// An \c Epoch is an immutable loaded program stamped with a monotonically
/// increasing id.  Requests capture a \c shared_ptr to their epoch at
/// admission, so a reload is atomic from every observer's point of view:
/// new admissions see the new epoch, in-flight requests finish against the
/// old one (kept alive by their reference), and the old program is freed
/// when its last request completes.  A reload that fails to parse leaves
/// the current epoch untouched — the daemon never serves a half-loaded
/// program.
///
/// The \c ResultCache is a bounded LRU from string keys
/// ("<kind>/e<epoch>/<policy>...") to immutable cache entries.  Entries
/// pin their epoch, so eviction — not reload — is what frees an old
/// epoch's solved results.  Only converged, native, fault-free results are
/// ever published (the server enforces this): a degraded or faulted answer
/// must never satisfy a later clean request.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_SERVE_EPOCH_H
#define HYBRIDPT_SERVE_EPOCH_H

#include "pta/AnalysisResult.h"
#include "pta/Metrics.h"
#include "workloads/Profiles.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pt {

class ContextPolicy;
class Program;

namespace serve {

/// One immutable loaded program.
struct Epoch {
  uint64_t Id = 0;
  /// What was loaded: a built-in benchmark name or a PTIR file path.
  std::string Spec;
  /// Ownership: exactly one of these holds the program.
  Benchmark Bench;
  std::unique_ptr<Program> Owned;
  /// The program, whoever owns it.
  const Program *Prog = nullptr;
};

/// Loads \p Spec (benchmark name or PTIR file) as epoch \p Id.  Returns
/// nullptr and fills \p Error on failure.
std::shared_ptr<const Epoch> loadEpoch(uint64_t Id, const std::string &Spec,
                                       std::string &Error);

/// One cached answer.  Solve entries carry the result (plus the policy it
/// borrows and the epoch that owns the program); rendered entries
/// (lint/compare) carry only their lines.  Immutable once published.
struct CacheEntry {
  std::shared_ptr<const Epoch> Ep;
  /// Solve entries — \c Result borrows \c Policy and \c Ep->Prog.
  std::unique_ptr<ContextPolicy> Policy;
  std::optional<AnalysisResult> Result;
  PrecisionMetrics Metrics;
  std::string LandedPolicy;
  std::string FallbackFrom;
  /// Rendered entries (lint / compare answers).
  std::vector<std::string> Lines;
};

/// Bounded thread-safe LRU over immutable cache entries.
class ResultCache {
public:
  explicit ResultCache(size_t MaxEntries) : Max(MaxEntries ? MaxEntries : 1) {}

  /// The entry under \p Key, bumped to most-recently-used; nullptr on miss.
  std::shared_ptr<const CacheEntry> get(const std::string &Key);

  /// Publishes \p Entry under \p Key (evicting the LRU tail when full).
  /// An existing entry is replaced.
  void put(const std::string &Key, std::shared_ptr<const CacheEntry> Entry);

  /// Drops every entry (reload).  In-flight readers keep their shared_ptr.
  void clear();

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    size_t Entries = 0;
    size_t Capacity = 0;
  };
  Stats stats() const;

private:
  using Row = std::pair<std::string, std::shared_ptr<const CacheEntry>>;

  mutable std::mutex Mu;
  size_t Max;
  std::list<Row> Order; ///< Front = most recently used.
  std::unordered_map<std::string, std::list<Row>::iterator> Index;
  uint64_t Hits = 0, Misses = 0, Evictions = 0;
};

} // namespace serve
} // namespace pt

#endif // HYBRIDPT_SERVE_EPOCH_H
