//===- serve/Canon.h - Canonical answer renderings --------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for what a daemon answer looks like
/// (docs/SERVING.md).  Every answer body is a list of text lines rendered
/// by these functions, and the batch CLIs render the same bodies through
/// the same underlying code paths — so a daemon reply is bit-identical to
/// the corresponding batch output by construction, not by test luck:
///
///  - points-to lines match the `hybridpt --dump-vpt` body (minus its
///    two-space indent),
///  - lint lines ARE `hybridpt-lint --format jsonl` lines
///    (checks::renderJsonl),
///  - callgraph lines are the `hybridpt --csv` header+row
///    (pt::metricsCsvHeader / metricsCsvRow) without the time column
///    (a cached answer's solve time is not a property of the request),
///  - compare lines are the `hybridpt-lint --compare` rendering
///    (checks::renderCompare).
///
/// The replay driver's --verify mode recomputes answers through these
/// same functions and demands equality, closing the loop.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_SERVE_CANON_H
#define HYBRIDPT_SERVE_CANON_H

#include "support/Ids.h"

#include <string>
#include <vector>

namespace pt {

class AnalysisResult;
class Program;
struct PrecisionMetrics;

namespace checks {
struct CompareResult;
struct Diagnostic;
} // namespace checks

namespace serve {

/// Splits \p Text into lines (no trailing newlines; a final unterminated
/// fragment counts as a line; empty lines are kept).
std::vector<std::string> splitLines(const std::string &Text);

/// "heapName : TypeName" per pointed-to heap site, in the solver's
/// deterministic \c AnalysisResult::pointsTo order.
std::vector<std::string> pointsToLines(const Program &P,
                                       const AnalysisResult &R, VarId V);

/// The `--format jsonl` diagnostic lines for \p Diags under \p Policy.
std::vector<std::string> lintLines(const Program &P,
                                   const std::vector<checks::Diagnostic> &Diags,
                                   const std::string &Policy);

/// The `--csv` metric header and row for \p M, labelled \p Policy,
/// without the time_s column.
std::vector<std::string> callGraphLines(const PrecisionMetrics &M,
                                        const std::string &Policy);

/// The `--compare` rendering of \p CR.
std::vector<std::string> compareLines(const checks::CompareResult &CR);

} // namespace serve
} // namespace pt

#endif // HYBRIDPT_SERVE_CANON_H
