//===- serve/Protocol.cpp ------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <sstream>

using namespace pt;
using namespace pt::serve;

const char *pt::serve::kindName(RequestKind K) {
  switch (K) {
  case RequestKind::PointsTo:
    return "points-to";
  case RequestKind::CallGraph:
    return "callgraph";
  case RequestKind::Lint:
    return "lint";
  case RequestKind::Compare:
    return "compare";
  case RequestKind::Reload:
    return "reload";
  case RequestKind::Health:
    return "health";
  case RequestKind::Drain:
    return "drain";
  }
  return "health";
}

bool pt::serve::kindByName(std::string_view Name, RequestKind &Out) {
  if (Name == "points-to")
    Out = RequestKind::PointsTo;
  else if (Name == "callgraph")
    Out = RequestKind::CallGraph;
  else if (Name == "lint")
    Out = RequestKind::Lint;
  else if (Name == "compare")
    Out = RequestKind::Compare;
  else if (Name == "reload")
    Out = RequestKind::Reload;
  else if (Name == "health")
    Out = RequestKind::Health;
  else if (Name == "drain")
    Out = RequestKind::Drain;
  else
    return false;
  return true;
}

const char *pt::serve::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::None:
    return "none";
  case ErrorCode::BadRequest:
    return "bad-request";
  case ErrorCode::UnknownKind:
    return "unknown-kind";
  case ErrorCode::UnknownPolicy:
    return "unknown-policy";
  case ErrorCode::UnknownVar:
    return "unknown-var";
  case ErrorCode::BadProgram:
    return "bad-program";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::Draining:
    return "draining";
  case ErrorCode::Budget:
    return "budget";
  case ErrorCode::Cancelled:
    return "cancelled";
  case ErrorCode::Internal:
    return "internal";
  }
  return "internal";
}

namespace {

/// Reads an optional string member; a present-but-not-string member is a
/// protocol error (tolerating it would silently drop a client's intent).
bool readString(const json::Value &Obj, std::string_view Key,
                std::string &Into, std::string &Error) {
  const json::Value *V = Obj.find(Key);
  if (!V)
    return true;
  if (!V->isString()) {
    std::ostringstream OS;
    OS << '\'' << Key << "' must be a string, got " << V->kindName();
    Error = OS.str();
    return false;
  }
  Into = V->Str;
  return true;
}

/// Reads an optional non-negative integer member.
bool readU64(const json::Value &Obj, std::string_view Key, uint64_t &Into,
             std::string &Error) {
  const json::Value *V = Obj.find(Key);
  if (!V)
    return true;
  if (!V->asU64(Into)) {
    std::ostringstream OS;
    OS << '\'' << Key << "' must be a non-negative integer, got "
       << V->kindName();
    Error = OS.str();
    return false;
  }
  return true;
}

} // namespace

bool pt::serve::parseRequest(std::string_view Line, Request &Out,
                             ErrorCode &Code, std::string &Error,
                             const ProtocolLimits &Limits) {
  Out = Request{};
  Code = ErrorCode::BadRequest;
  if (Line.size() > Limits.MaxLineBytes) {
    Error = "request line exceeds " + std::to_string(Limits.MaxLineBytes) +
            " bytes";
    return false;
  }
  json::ParseLimits JLimits = Limits.Json;
  if (JLimits.MaxBytes > Limits.MaxLineBytes)
    JLimits.MaxBytes = Limits.MaxLineBytes;
  json::Value Root;
  std::string JsonError;
  if (!json::parse(Line, Root, JsonError, JLimits)) {
    Error = "invalid JSON: " + JsonError;
    return false;
  }
  if (!Root.isObject()) {
    Error = std::string("request must be a JSON object, got ") +
            Root.kindName();
    return false;
  }

  // Pull the id first so even otherwise-invalid requests get a correlated
  // error reply.
  const json::Value *IdV = Root.find("id");
  if (!IdV) {
    Error = "request needs a numeric 'id'";
    return false;
  }
  if (!IdV->asU64(Out.Id)) {
    Error = std::string("'id' must be a non-negative integer, got ") +
            IdV->kindName();
    return false;
  }

  const json::Value *KindV = Root.find("kind");
  if (!KindV || !KindV->isString()) {
    Error = "request needs a string 'kind'";
    return false;
  }
  if (!kindByName(KindV->Str, Out.Kind)) {
    Code = ErrorCode::UnknownKind;
    Error = "unknown kind '" + KindV->Str +
            "' (points-to, callgraph, lint, compare, reload, health, drain)";
    return false;
  }

  if (!readString(Root, "policy", Out.Policy, Error) ||
      !readString(Root, "base", Out.Base, Error) ||
      !readString(Root, "refined", Out.Refined, Error) ||
      !readString(Root, "var", Out.Var, Error) ||
      !readString(Root, "program", Out.Program, Error) ||
      !readU64(Root, "deadline_ms", Out.DeadlineMs, Error) ||
      !readU64(Root, "budget_ms", Out.BudgetMs, Error) ||
      !readU64(Root, "max_facts", Out.MaxFacts, Error) ||
      !readU64(Root, "max_memory_mb", Out.MaxMemoryMb, Error))
    return false;

  if (const json::Value *ChecksV = Root.find("checks")) {
    if (!ChecksV->isArray()) {
      Error = std::string("'checks' must be an array of strings, got ") +
              ChecksV->kindName();
      return false;
    }
    if (ChecksV->Arr.size() > Limits.MaxChecks) {
      Error = "'checks' exceeds " + std::to_string(Limits.MaxChecks) +
              " entries";
      return false;
    }
    for (const json::Value &C : ChecksV->Arr) {
      if (!C.isString()) {
        Error = std::string("'checks' entries must be strings, got ") +
                C.kindName();
        return false;
      }
      Out.Checks.push_back(C.Str);
    }
  }

  // Per-kind required fields.
  switch (Out.Kind) {
  case RequestKind::PointsTo:
    if (Out.Var.empty()) {
      Error = "points-to needs 'var' (Class::method/arity::name)";
      return false;
    }
    break;
  case RequestKind::Compare:
    if (Out.Base.empty() || Out.Refined.empty()) {
      Error = "compare needs both 'base' and 'refined' policy names";
      return false;
    }
    break;
  default:
    break;
  }

  Code = ErrorCode::None;
  Error.clear();
  return true;
}
