//===- serve/Epoch.cpp ---------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Epoch.h"

#include "ir/Program.h"
#include "irtext/TextFormat.h"

#include <fstream>
#include <sstream>

using namespace pt;
using namespace pt::serve;

std::shared_ptr<const Epoch> pt::serve::loadEpoch(uint64_t Id,
                                                  const std::string &Spec,
                                                  std::string &Error) {
  auto Ep = std::make_shared<Epoch>();
  Ep->Id = Id;
  Ep->Spec = Spec;
  if (isBenchmarkName(Spec)) {
    Ep->Bench = buildBenchmark(Spec);
    Ep->Prog = Ep->Bench.Prog.get();
    return Ep;
  }
  std::ifstream In(Spec);
  if (!In) {
    Error = "cannot open '" + Spec + "'";
    return nullptr;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  ParseResult Parsed = parseProgram(Buffer.str(), Spec);
  if (!Parsed.ok()) {
    Error = "parse error in '" + Spec + "'";
    for (const std::string &E : Parsed.Errors) {
      Error += ": " + E;
      break; // First error names the problem; the rest are usually noise.
    }
    return nullptr;
  }
  Ep->Owned = std::move(Parsed.Prog);
  Ep->Prog = Ep->Owned.get();
  return Ep;
}

std::shared_ptr<const CacheEntry> ResultCache::get(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return nullptr;
  }
  ++Hits;
  Order.splice(Order.begin(), Order, It->second);
  return It->second->second;
}

void ResultCache::put(const std::string &Key,
                      std::shared_ptr<const CacheEntry> Entry) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->second = std::move(Entry);
    Order.splice(Order.begin(), Order, It->second);
    return;
  }
  Order.emplace_front(Key, std::move(Entry));
  Index[Key] = Order.begin();
  while (Order.size() > Max) {
    Index.erase(Order.back().first);
    Order.pop_back();
    ++Evictions;
  }
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Order.clear();
  Index.clear();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Entries = Order.size();
  S.Capacity = Max;
  return S;
}
