//===- pta/Degrade.h - Policy fallback ladder -------------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graceful degradation for budget-limited analysis runs
/// (docs/ROBUSTNESS.md).  Instead of reporting a dash when a precise
/// policy blows its time/fact/memory budget, \c solveWithLadder re-runs
/// the cell under successively coarser policies until one converges: every
/// rung transition follows the proven precision-order pairs of
/// context/PolicyRegistry.h, so a landed result is exactly what a native
/// run of the landed policy would produce — strictly coarser than what was
/// asked for, never wrong.
///
/// The default ladder for a policy is the chain walk of the finer→coarser
/// DAG (first listed pair per policy, "insens" terminal), e.g.
/// 2obj+H → 2type+H → insens.  Cancellation is not degraded: a tripped
/// \c CancelToken means the user wants out, so the ladder stops and
/// returns the cancelled partial result.
///
/// Warm start: when the ladder lands on "insens", the aborted finer run's
/// reachable-method set seeds the re-run.  This is sound — every method
/// reachable under any policy is reachable under insens, so seeding cannot
/// change the least fixpoint, only skip re-discovery work — and therefore
/// keeps every precision metric bit-for-bit equal to a cold native run.
/// Intermediate context-sensitive rungs are never seeded: a finer run's
/// reachable set is not generally contained in an incomparable rung's
/// fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_DEGRADE_H
#define HYBRIDPT_PTA_DEGRADE_H

#include "pta/AnalysisResult.h"
#include "pta/Metrics.h"
#include "pta/Solver.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pt {

class Program;
class ContextPolicy;

/// Configuration of one ladder descent.
struct LadderOptions {
  /// Explicit rungs to try after the requested policy, in order.  Empty =
  /// derive the default ladder with \c fallbackLadder.  Validated: each
  /// rung must be provably coarser than its predecessor
  /// (\c isProvablyCoarser), so a mistyped ladder fails fast instead of
  /// silently landing an incomparable result.
  std::vector<std::string> Rungs;
  /// Seed the "insens" rung with the aborted finer run's reachable set
  /// (see file comment for the soundness argument).
  bool WarmStart = true;
};

/// Outcome of a ladder descent.  \c Result borrows \c Policy, which this
/// struct owns — keep the whole struct alive while reading the result.
struct LadderResult {
  /// The landed run; empty only when the requested policy name is unknown
  /// or an explicit ladder failed validation (see \c Error).
  std::optional<AnalysisResult> Result;
  std::unique_ptr<ContextPolicy> Policy;
  std::string RequestedPolicy;
  /// The rung \c Result describes; equals \c RequestedPolicy for a native
  /// run.
  std::string LandedPolicy;
  /// Set to \c RequestedPolicy when the ladder descended at least once;
  /// empty for a native run (the BENCH_table1.json "fallback_from" stamp).
  std::string FallbackFrom;
  /// Every rung tried, in order, landed rung last.
  std::vector<RungAttempt> Trail;
  /// True when even the last rung aborted on a resource budget.
  bool Exhausted = false;
  std::string Error;

  bool degraded() const { return !FallbackFrom.empty(); }
};

/// The default fallback ladder starting at \p Policy: the chain walk of
/// the precision-order DAG following the first listed coarser pair per
/// policy.  Includes \p Policy itself as the first rung.  The walk stops
/// at the first policy with no precision-order pair — it does NOT jump to
/// "insens" on its own — so the result ends at "insens" only when every
/// step is ledger-proven; \c solveWithLadder fails fast otherwise.
std::vector<std::string> fallbackLadder(std::string_view Policy);

/// Checks that \p Rungs descends strictly in proven precision order and
/// that every name is a known policy.  Returns false and fills \p Error
/// otherwise.
bool validateLadder(const std::vector<std::string> &Rungs,
                    std::string &Error);

/// Runs \p PolicyName over \p Prog under \p Opts; on a resource-budget
/// abort (time/facts/memory — not cancellation) re-runs the next ladder
/// rung until one converges or the ladder is exhausted.  Each descent is
/// recorded on \c Opts.Trace as a "ladder" record, and fallback rungs get
/// "~<rung>"-suffixed trace labels so per-label heartbeat series stay
/// monotone.
LadderResult solveWithLadder(const Program &Prog, std::string_view PolicyName,
                             const SolverOptions &Opts,
                             const LadderOptions &LOpts = {});

} // namespace pt

#endif // HYBRIDPT_PTA_DEGRADE_H
