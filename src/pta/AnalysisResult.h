//===- pta/AnalysisResult.h - Points-to analysis output ---------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output relations of one analysis run (paper Figure 1):
/// VARPOINTSTO, FLDPOINTSTO, CALLGRAPH, and REACHABLE, together with query
/// helpers and canonical exports used by the differential tests.
///
/// An \c AnalysisResult borrows the \c Program and \c ContextPolicy it was
/// produced against; both must outlive it.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_ANALYSISRESULT_H
#define HYBRIDPT_PTA_ANALYSISRESULT_H

#include "context/Policy.h"
#include "support/Ids.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

namespace pt {

class Program;

/// Why a run stopped short of its fixpoint (docs/ROBUSTNESS.md).  The
/// paper's dashes are all \c TimeBudget; the graceful-degradation layer
/// reacts to the resource reasons (time, facts, memory) by descending the
/// fallback ladder and passes \c Cancelled through untouched — a user who
/// pressed ^C wants out, not a cheaper analysis.
enum class AbortReason : uint8_t {
  None,         ///< Ran to fixpoint.
  TimeBudget,   ///< SolverOptions::TimeBudgetMs expired.
  FactBudget,   ///< SolverOptions::MaxFacts reached.
  MemoryBudget, ///< SolverOptions::MemoryBudgetBytes exceeded.
  Cancelled,    ///< CancelToken tripped (SIGINT or deadline).
};

/// Stable lower-case name used in traces, JSON, and CLI output.
const char *abortReasonName(AbortReason Reason);

/// One context-sensitive call-graph edge:
/// CALLGRAPH(invo, callerCtx, callee, calleeCtx).
struct CallGraphEdge {
  InvokeId Invo;
  CtxId CallerCtx;
  MethodId Callee;
  CtxId CalleeCtx;
};

/// The complete result of a points-to analysis run.
class AnalysisResult {
public:
  /// Points-to facts of one (variable, context) pair.  \c Objs holds dense
  /// object ids resolvable via \c objHeap / \c objHCtx.
  struct VarFactsEntry {
    VarId Var;
    CtxId Ctx;
    std::vector<uint32_t> Objs;
  };

  /// Field facts of one (object, field) slot:
  /// FLDPOINTSTO(baseH, baseHCtx, fld, ...).
  struct FieldFactsEntry {
    uint32_t BaseObj;
    FieldId Fld;
    std::vector<uint32_t> Objs;
  };

  /// Facts of one static (global) field slot.
  struct StaticFactsEntry {
    FieldId Fld;
    std::vector<uint32_t> Objs;
  };

  /// Exception objects escaping one (method, context) frame
  /// (METHODTHROWS).
  struct ThrowFactsEntry {
    MethodId Meth;
    CtxId Ctx;
    std::vector<uint32_t> Objs;
  };

  AnalysisResult(const Program &Prog, const ContextPolicy &Policy)
      : Prog(&Prog), Policy(&Policy) {}

  // --- Raw relations (filled by the solver) ---

  std::vector<VarFactsEntry> VarFacts;
  std::vector<FieldFactsEntry> FieldFacts;
  std::vector<StaticFactsEntry> StaticFacts;
  std::vector<ThrowFactsEntry> ThrowFacts;
  std::vector<CallGraphEdge> CallEdges;
  std::vector<std::pair<MethodId, CtxId>> Reachable;

  /// Heap site of dense object id \p Obj.
  HeapId objHeap(uint32_t Obj) const { return ObjHeaps[Obj]; }
  /// Heap context of dense object id \p Obj.
  HCtxId objHCtx(uint32_t Obj) const { return ObjHCtxs[Obj]; }
  size_t numObjects() const { return ObjHeaps.size(); }

  std::vector<HeapId> ObjHeaps;
  std::vector<HCtxId> ObjHCtxs;

  /// True when the run hit its time or fact budget; facts are then a sound
  /// under-approximation of the fixpoint and metrics must not be trusted.
  bool Aborted = false;

  /// Why the run aborted; \c None when it converged.
  AbortReason Reason = AbortReason::None;

  /// True when the abort was staged by the fault-injection plan
  /// (support/FaultPlan.h) rather than by real resource pressure; retry
  /// policies treat injected aborts as transient.
  bool FaultInjected = false;

  /// Wall-clock solve time, filled by the solver.
  double SolveMs = 0.0;

  /// Peak solver node count (interned (var, ctx) pairs plus field, static
  /// and throw slots); 0 when produced by a non-node-based engine.
  size_t SolverNodes = 0;

  /// Bytes held by the solver's persistent containers at harvest time
  /// (points-to sets, intern tables, dedup sets, call graph).  The solver
  /// only grows, so this is also the peak; 0 for non-node-based engines.
  size_t PeakBytes = 0;

  /// Rule-fire and infrastructure counters for the run; all-zero when the
  /// build disables HYBRIDPT_TELEMETRY or the engine does not count.
  telemetry::SolverCounters Counters;

  // --- Queries ---

  const Program &program() const { return *Prog; }
  const ContextPolicy &policy() const { return *Policy; }

  /// Context-insensitive projection: all heap sites \p V may point to,
  /// sorted and deduplicated.
  std::vector<HeapId> pointsTo(VarId V) const;

  /// All methods invocation site \p I may dispatch to, sorted and
  /// deduplicated over all contexts.
  std::vector<MethodId> callTargets(InvokeId I) const;

  /// All methods reachable in at least one context, sorted and dedup'd.
  std::vector<MethodId> reachableMethods() const;

  /// True when cast site \p Site may observe an object that is not a
  /// subtype of the cast target (the may-fail-casts client).
  bool mayFailCast(uint32_t Site) const;

  /// Total number of context-sensitive var-points-to facts — the paper's
  /// platform-independent complexity metric ("sensitive var-points-to").
  size_t numCsVarPointsTo() const;

  /// Total number of field-points-to facts.
  size_t numFieldPointsTo() const;

  /// Total number of static-field-points-to facts.
  size_t numStaticFieldPointsTo() const;

  /// Total number of method-throws facts.
  size_t numThrowFacts() const;

  /// Heap sites of exception objects escaping the program's entry points
  /// uncaught, sorted and deduplicated (the uncaught-exceptions client).
  std::vector<HeapId> uncaughtExceptions() const;

  // --- Context-insensitive bulk accessors (checker clients) ---

  /// CI points-to set of every variable, indexed densely by VarId: heap
  /// site indices, sorted and deduplicated.  One pass over VarFacts, so
  /// clients querying many variables should prefer this over pointsTo().
  std::vector<std::vector<uint32_t>> pointsToByVar() const;

  /// CI field edges (base heap, field, heap), sorted and deduplicated —
  /// the store-reachability input of the method-escape checker.
  std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> ciFieldEdges() const;

  /// CI static-field edges (field, heap), sorted and deduplicated.
  std::vector<std::pair<uint32_t, uint32_t>> ciStaticEdges() const;

  // --- Canonical export for differential testing ---
  //
  // Context ids are interning-order dependent, so cross-solver comparison
  // re-encodes each context as its element tuple.  Each exported row is a
  // flat word vector; the full export is sorted.

  /// VARPOINTSTO rows: var, ctx-elems..., heap, hctx-elems....
  std::vector<std::vector<uint32_t>> exportVarPointsTo() const;

  /// CALLGRAPH rows: invo, callerCtx-elems..., callee, calleeCtx-elems....
  std::vector<std::vector<uint32_t>> exportCallGraph() const;

  /// FLDPOINTSTO rows: baseHeap, baseHCtx-elems..., fld, heap, hctx-elems.
  std::vector<std::vector<uint32_t>> exportFieldPointsTo() const;

  /// REACHABLE rows: method, ctx-elems....
  std::vector<std::vector<uint32_t>> exportReachable() const;

  /// STATICFLDPOINTSTO rows: fld, heap, hctx-elems....
  std::vector<std::vector<uint32_t>> exportStaticFieldPointsTo() const;

  /// METHODTHROWS rows: method, ctx-elems..., heap, hctx-elems....
  std::vector<std::vector<uint32_t>> exportThrowPointsTo() const;

private:
  const Program *Prog;
  const ContextPolicy *Policy;
};

} // namespace pt

#endif // HYBRIDPT_PTA_ANALYSISRESULT_H
