//===- pta/Solver.cpp ---------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include "context/Policy.h"
#include "ir/Program.h"
#include "pta/Trace.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace pt;

Solver::Solver(const Program &Prog, ContextPolicy &Policy, SolverOptions Opts)
    : Prog(Prog), Policy(Policy), Opts(Opts), Budget(Opts.TimeBudgetMs) {
  assert(Prog.isFinalized() && "solver needs a finalized program");
  // Fault injection for harness self-tests and the robustness matrix
  // (docs/ROBUSTNESS.md).  An explicit plan wins; otherwise pick up the
  // HYBRIDPT_FAULT_PLAN / HYBRIDPT_TEST_BREAK environment plan.  Never set
  // outside tests/CI.
  if (!this->Opts.Faults.any())
    this->Opts.Faults = FaultPlan::fromEnv();
  StepFaultArmed = this->Opts.Faults.OomAtStep != 0 ||
                   this->Opts.Faults.CancelAtStep != 0;
  SlowRuleArmed = this->Opts.Faults.SlowRule != FaultRule::None;
}

void Solver::pollGuards() {
  if (Budget.expired()) {
    abortRun(AbortReason::TimeBudget);
    return;
  }
  if (Opts.Cancel && Opts.Cancel->cancelled()) {
    abortRun(AbortReason::Cancelled);
    return;
  }
  // The memory walk is O(nodes), so sample it on every eighth poll only
  // (~8K budget ticks); overshoot is bounded by one polling interval.
  if (Opts.MemoryBudgetBytes != 0 && (++MemPollTick & 0x7) == 0 &&
      memoryBytes() > Opts.MemoryBudgetBytes)
    abortRun(AbortReason::MemoryBudget);
}

void Solver::pollStepFaults() {
  if (Aborted)
    return;
  if (Opts.Faults.OomAtStep != 0 && StepCount >= Opts.Faults.OomAtStep)
    abortRun(AbortReason::MemoryBudget, /*Injected=*/true);
  else if (Opts.Faults.CancelAtStep != 0 &&
           StepCount >= Opts.Faults.CancelAtStep)
    abortRun(AbortReason::Cancelled, /*Injected=*/true);
}

void Solver::stallForFault() {
  // ~50us busy wait per targeted rule fire: enough to blow any realistic
  // time budget without sleeping through test suites.
  Stopwatch W;
  while (W.elapsedMs() < 0.05) {
  }
}

uint32_t Solver::varNode(VarId V, CtxId Ctx) {
  uint64_t Key = packPair(V.index(), Ctx.index());
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = VarCtxIndex.tryEmplace(Key, Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  Nodes.emplace_back();
  Descs.push_back({NodeKind::VarCtx, V.index(), Ctx.index()});
  return Idx;
}

uint32_t Solver::fieldNode(uint32_t Obj, FieldId Fld) {
  uint64_t Key = packPair(Obj, Fld.index());
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = FieldSlotIndex.tryEmplace(Key, Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  Nodes.emplace_back();
  Descs.push_back({NodeKind::FieldSlot, Obj, Fld.index()});
  return Idx;
}

uint32_t Solver::staticNode(FieldId Fld) {
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = StaticSlotIndex.tryEmplace(Fld.index(), Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  Nodes.emplace_back();
  Descs.push_back({NodeKind::StaticSlot, Fld.index(), 0});
  return Idx;
}

uint32_t Solver::throwNode(MethodId M, CtxId Ctx) {
  uint64_t Key = packPair(M.index(), Ctx.index());
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = ThrowSlotIndex.tryEmplace(Key, Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  Nodes.emplace_back();
  Descs.push_back({NodeKind::ThrowSlot, M.index(), Ctx.index()});
  return Idx;
}

uint32_t Solver::internObject(HeapId Heap, HCtxId HCtx) {
  uint64_t Key = packPair(Heap.index(), HCtx.index());
  uint32_t Obj = static_cast<uint32_t>(ObjHeaps.size());
  auto [Slot, Inserted] = ObjIndex.tryEmplace(Key, Obj);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.ObjectsInterned);
  ObjHeaps.push_back(Heap);
  ObjHCtxs.push_back(HCtx);
  return Obj;
}

void Solver::addFact(uint32_t NodeIdx, uint32_t Obj) {
  if (Aborted)
    return;
  // Fact budget: refuse to queue more work once the budget is spent (the
  // old check ran after queueing, letting one extra wave through).
  if (Opts.MaxFacts != 0 && FactCount >= Opts.MaxFacts) {
    abortRun(AbortReason::FactBudget);
    return;
  }
  Node &N = Nodes[NodeIdx];
  if (!N.Set.insert(Obj)) {
    PT_COUNT(Counters.FactDedupHits);
    return;
  }
  PT_COUNT(Counters.FactsInserted);
  ++FactCount;
  if (!N.Queued) {
    N.Queued = true;
    Worklist.push_back(NodeIdx);
  }
}

void Solver::addEdge(uint32_t From, uint32_t To) {
  if (From == To)
    return;
  if (!EdgeDedup.insert(packPair(From, To))) {
    PT_COUNT(Counters.EdgeDedupHits);
    return;
  }
  PT_COUNT(Counters.EdgesAdded);
  Nodes[From].Edges.push_back(To);
  // Replay facts already present at the source.  ObjectSet positions are
  // stable under insertion, so walk by index instead of copying the set;
  // re-read the node each step since Nodes may reallocate through
  // reentrant graph growth.
  uint32_t Count = Nodes[From].Set.size();
  PT_COUNT_ADD(Counters.FactsReplayed, Count);
  for (uint32_t I = 0; I < Count; ++I)
    addFact(To, Nodes[From].Set.at(I));
}

void Solver::addCastEdge(uint32_t From, uint32_t To, TypeId Filter) {
  PT_COUNT(Counters.EdgesAdded);
  Nodes[From].CastEdges.push_back({To, Filter});
  uint32_t Count = Nodes[From].Set.size();
  PT_COUNT_ADD(Counters.FactsReplayed, Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Obj = Nodes[From].Set.at(I);
    PT_COUNT(Counters.RuleCast);
    if (Prog.isSubtype(Prog.heap(ObjHeaps[Obj]).Type, Filter))
      addFact(To, Obj);
  }
}

void Solver::ensureReachable(MethodId M, CtxId Ctx) {
  if (Aborted)
    return;
  if (!ReachableSet.insert(packPair(M.index(), Ctx.index())))
    return;
  PT_COUNT(Counters.MethodsInstantiated);
  ReachableList.push_back({M, Ctx});

  const MethodInfo &Body = Prog.method(M);

  // ALLOC: RECORD builds the heap context; seed the fact directly
  // (Figure 2, third rule).
  for (const AllocInstr &A : Body.Allocs) {
    PT_COUNT(Counters.RuleAlloc);
    slowRule(FaultRule::Alloc);
    HCtxId HCtx = Policy.record(A.Heap, Ctx);
    uint32_t Obj = internObject(A.Heap, HCtx);
    addFact(varNode(A.Var, Ctx), Obj);
  }

  // MOVE: intra-procedural copy edges.
  for (const MoveInstr &Mv : Body.Moves) {
    PT_COUNT(Counters.RuleMove);
    slowRule(FaultRule::Move);
    addEdge(varNode(Mv.From, Ctx), varNode(Mv.To, Ctx));
  }

  // Casts: copy edges filtered by the target type.
  for (const CastInstr &C : Body.Casts) {
    slowRule(FaultRule::Cast);
    addCastEdge(varNode(C.From, Ctx), varNode(C.To, Ctx), C.Target);
  }

  // LOAD / STORE: subscribe on the base variable.  Each object that ever
  // reaches the base connects the field slot to the local variable.  The
  // replay loops below capture the set size up front: facts arriving
  // mid-replay stay in the node's pending suffix and reach the new
  // subscription through the worklist.
  for (const LoadInstr &L : Body.Loads) {
    slowRule(FaultRule::Load);
    uint32_t Base = varNode(L.Base, Ctx);
    uint32_t To = varNode(L.To, Ctx);
    Nodes[Base].Loads.push_back({L.Fld, To});
    uint32_t Count = Nodes[Base].Set.size();
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t Obj = Nodes[Base].Set.at(I);
      PT_COUNT(Counters.RuleLoad);
      addEdge(fieldNode(Obj, L.Fld), To);
    }
  }
  for (const StoreInstr &S : Body.Stores) {
    slowRule(FaultRule::Store);
    uint32_t Base = varNode(S.Base, Ctx);
    uint32_t From = varNode(S.From, Ctx);
    Nodes[Base].Stores.push_back({S.Fld, From});
    uint32_t Count = Nodes[Base].Set.size();
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t Obj = Nodes[Base].Set.at(I);
      PT_COUNT(Counters.RuleStore);
      addEdge(From, fieldNode(Obj, S.Fld));
    }
  }

  // Static field accesses: global, context-free slots (Doop's model).
  for (const SLoadInstr &L : Body.SLoads) {
    PT_COUNT(Counters.RuleStaticLoad);
    slowRule(FaultRule::SLoad);
    addEdge(staticNode(L.Fld), varNode(L.To, Ctx));
  }
  for (const SStoreInstr &S : Body.SStores) {
    PT_COUNT(Counters.RuleStaticStore);
    slowRule(FaultRule::SStore);
    addEdge(varNode(S.From, Ctx), staticNode(S.Fld));
  }

  // Throws: every object reaching the thrown variable is routed through
  // this frame's handlers (or escapes).
  for (const ThrowInstr &T : Body.Throws) {
    uint32_t VNode = varNode(T.V, Ctx);
    Nodes[VNode].ThrowSubs.push_back(packPair(M.index(), Ctx.index()));
    uint32_t Count = Nodes[VNode].Set.size();
    for (uint32_t I = 0; I < Count; ++I)
      routeThrow(Nodes[VNode].Set.at(I), M, Ctx);
  }

  // Calls.
  for (InvokeId Inv : Body.Invokes) {
    const InvokeInfo &Call = Prog.invoke(Inv);
    if (Call.IsStatic) {
      // SCALL: MERGESTATIC gives the callee context outright
      // (Figure 2, last rule).
      PT_COUNT(Counters.RuleSCall);
      slowRule(FaultRule::SCall);
      if (Opts.Faults.DropSCall)
        continue; // Injected bug (support/FaultPlan.h): see constructor.
      CtxId CalleeCtx = Policy.mergeStatic(Inv, Ctx);
      wireCall(Inv, Ctx, Call.Target, CalleeCtx);
    } else {
      // VCALL: subscribe on the receiver; dispatch per arriving object
      // (Figure 2, second-to-last rule).
      uint32_t Base = varNode(Call.Base, Ctx);
      Nodes[Base].Dispatches.push_back({Inv, Ctx});
      uint32_t Count = Nodes[Base].Set.size();
      for (uint32_t I = 0; I < Count; ++I)
        dispatch({Inv, Ctx}, Nodes[Base].Set.at(I));
    }
  }
}

void Solver::routeThrow(uint32_t Obj, MethodId M, CtxId Ctx) {
  if (checkBudget())
    return;
  PT_COUNT(Counters.RuleThrow);
  slowRule(FaultRule::Throw);
  TypeId ObjType = Prog.heap(ObjHeaps[Obj]).Type;
  const MethodInfo &Body = Prog.method(M);
  bool Caught = false;
  for (const HandlerInfo &H : Body.Handlers) {
    if (Prog.isSubtype(ObjType, H.CatchType)) {
      addFact(varNode(H.Var, Ctx), Obj);
      Caught = true;
    }
  }
  if (!Caught)
    addFact(throwNode(M, Ctx), Obj);
}

void Solver::addThrowLink(uint32_t ThrowNodeIdx, MethodId CallerM,
                          CtxId CallerCtx) {
  uint64_t Link = packPair(CallerM.index(), CallerCtx.index());
  uint64_t DedupKey =
      mix64(Link) ^ (static_cast<uint64_t>(ThrowNodeIdx) << 1);
  if (!ThrowLinkDedup.insert(DedupKey))
    return;
  Nodes[ThrowNodeIdx].ThrowLinks.push_back(Link);
  uint32_t Count = Nodes[ThrowNodeIdx].Set.size();
  for (uint32_t I = 0; I < Count; ++I)
    routeThrow(Nodes[ThrowNodeIdx].Set.at(I), CallerM, CallerCtx);
}

void Solver::dispatch(const DispatchSub &Sub, uint32_t Obj) {
  if (checkBudget())
    return;
  PT_COUNT(Counters.RuleVCall);
  slowRule(FaultRule::VCall);
  const InvokeInfo &Call = Prog.invoke(Sub.Invo);
  HeapId Heap = ObjHeaps[Obj];
  HCtxId HCtx = ObjHCtxs[Obj];
  // LOOKUP(heapT, sig, toMeth).
  MethodId Callee = Prog.lookup(Prog.heap(Heap).Type, Call.Sig);
  if (!Callee.isValid())
    return; // No receiver method: the concrete execution would throw.
  CtxId CalleeCtx = Policy.merge(Heap, HCtx, Sub.Invo, Sub.CallerCtx);
  // THISVAR binding: only this receiver object flows into `this` under the
  // context derived from it.
  const MethodInfo &CalleeInfo = Prog.method(Callee);
  ensureReachable(Callee, CalleeCtx);
  addFact(varNode(CalleeInfo.This, CalleeCtx), Obj);
  wireCall(Sub.Invo, Sub.CallerCtx, Callee, CalleeCtx);
}

bool Solver::insertCallEdge(const CallGraphEdge &E) {
  uint32_t Words[4] = {E.Invo.index(), E.CallerCtx.index(),
                       E.Callee.index(), E.CalleeCtx.index()};
  uint64_t H = hashWords(Words, 4);
  uint32_t NewIdx = static_cast<uint32_t>(CallEdges.size());
  auto [Head, Fresh] = CallEdgeHead.tryEmplace(H, NewIdx);
  uint32_t ChainNext = UINT32_MAX;
  if (!Fresh) {
    for (uint32_t I = *Head; I != UINT32_MAX; I = CallEdgeNext[I]) {
      const CallGraphEdge &X = CallEdges[I];
      if (X.Invo == E.Invo && X.CallerCtx == E.CallerCtx &&
          X.Callee == E.Callee && X.CalleeCtx == E.CalleeCtx)
        return false;
    }
    ChainNext = *Head;
    *Head = NewIdx;
  }
  PT_COUNT(Counters.CallEdgesInserted);
  CallEdges.push_back(E);
  CallEdgeNext.push_back(ChainNext);
  return true;
}

void Solver::wireCall(InvokeId Invo, CtxId CallerCtx, MethodId Callee,
                      CtxId CalleeCtx) {
  if (!insertCallEdge({Invo, CallerCtx, Callee, CalleeCtx}))
    return;

  ensureReachable(Callee, CalleeCtx);

  // INTERPROCASSIGN: actual -> formal edges (Figure 2, first rule).
  const InvokeInfo &Call = Prog.invoke(Invo);
  const MethodInfo &CalleeInfo = Prog.method(Callee);
  size_t NumArgs = std::min(Call.Actuals.size(), CalleeInfo.Formals.size());
  for (size_t I = 0; I < NumArgs; ++I)
    addEdge(varNode(Call.Actuals[I], CallerCtx),
            varNode(CalleeInfo.Formals[I], CalleeCtx));

  // Return value: formal-return -> actual-return (Figure 2, second rule).
  if (Call.RetTo.isValid() && CalleeInfo.Return.isValid())
    addEdge(varNode(CalleeInfo.Return, CalleeCtx),
            varNode(Call.RetTo, CallerCtx));

  // Exception escalation: what escapes the callee is raised in the
  // calling frame.
  addThrowLink(throwNode(Callee, CalleeCtx), Call.InMethod, CallerCtx);
}

void Solver::processDelta(uint32_t NodeIdx) {
  // The pending delta is the set suffix [Scanned, size()): positions are
  // stable, so no batch is moved out — reentrant growth just extends the
  // suffix and the loop picks it up.
  //
  // Subscriptions may grow while we iterate (body instantiation reached
  // through dispatch can add loads on this very node), so use index loops
  // and re-read the vectors from Nodes[NodeIdx] each step.  Subscriptions
  // added mid-processing replay the full set themselves, which includes
  // this delta; processing them again here is idempotent.
  while (true) {
    if (Aborted)
      return;
    {
      Node &N = Nodes[NodeIdx];
      if (N.Scanned >= N.Set.size())
        break;
    }
    uint32_t Obj = Nodes[NodeIdx].Set.at(Nodes[NodeIdx].Scanned++);

    for (size_t I = 0; I < Nodes[NodeIdx].Dispatches.size(); ++I) {
      DispatchSub Sub = Nodes[NodeIdx].Dispatches[I];
      dispatch(Sub, Obj);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].ThrowSubs.size(); ++I) {
      uint64_t Frame = Nodes[NodeIdx].ThrowSubs[I];
      routeThrow(Obj, MethodId(unpackHi(Frame)), CtxId(unpackLo(Frame)));
    }
    for (size_t I = 0; I < Nodes[NodeIdx].ThrowLinks.size(); ++I) {
      uint64_t Frame = Nodes[NodeIdx].ThrowLinks[I];
      routeThrow(Obj, MethodId(unpackHi(Frame)), CtxId(unpackLo(Frame)));
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Loads.size(); ++I) {
      LoadSub Sub = Nodes[NodeIdx].Loads[I];
      PT_COUNT(Counters.RuleLoad);
      slowRule(FaultRule::Load);
      addEdge(fieldNode(Obj, Sub.Fld), Sub.ToNode);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Stores.size(); ++I) {
      StoreSub Sub = Nodes[NodeIdx].Stores[I];
      PT_COUNT(Counters.RuleStore);
      slowRule(FaultRule::Store);
      addEdge(Sub.FromNode, fieldNode(Obj, Sub.Fld));
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Edges.size(); ++I) {
      uint32_t To = Nodes[NodeIdx].Edges[I];
      addFact(To, Obj);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].CastEdges.size(); ++I) {
      CastEdge E = Nodes[NodeIdx].CastEdges[I];
      PT_COUNT(Counters.RuleCast);
      slowRule(FaultRule::Cast);
      if (Prog.isSubtype(Prog.heap(ObjHeaps[Obj]).Type, E.Filter))
        addFact(E.ToNode, Obj);
    }
  }
}

void Solver::drainWorklist() {
  while (!Worklist.empty()) {
    if (Aborted || checkBudget())
      return;
    ++StepCount;
    if (StepFaultArmed) {
      pollStepFaults();
      if (Aborted)
        return;
    }
    uint32_t NodeIdx = Worklist.front();
    Worklist.pop_front();
    PT_COUNT(Counters.WorklistSteps);
    pollHeartbeat();
    Nodes[NodeIdx].Queued = false;
    processDelta(NodeIdx);
  }
}

AnalysisResult Solver::run() {
  assert(!HasRun && "Solver::run may be called once");
  HasRun = true;

  Stopwatch Watch;
  CtxId Initial = Policy.initialContext();
  // Warm start: the fallback ladder seeds a coarser re-run with the
  // aborted finer run's reachable set (see SolverOptions::SeedReachable
  // for the soundness argument).  Seeds go in before the entry points so
  // their bodies instantiate exactly once either way.
  for (MethodId Seed : Opts.SeedReachable)
    ensureReachable(Seed, Initial);
  for (MethodId Entry : Prog.entryPoints())
    ensureReachable(Entry, Initial);
  drainWorklist();

  // One closing heartbeat regardless of cadence, so every traced run —
  // including aborted ones — leaves a last-known-state record behind
  // (the --explain-abort source).
  if (Opts.Trace)
    emitHeartbeat(/*Final=*/true);

  AnalysisResult Result = harvest();
  Result.SolveMs = Watch.elapsedMs();
  return Result;
}

size_t Solver::memoryBytes() const {
  size_t Bytes = Nodes.capacity() * sizeof(Node) +
                 Descs.capacity() * sizeof(NodeDesc);
  for (const Node &N : Nodes) {
    Bytes += N.Set.memoryBytes();
    Bytes += N.Edges.capacity() * sizeof(uint32_t);
    Bytes += N.CastEdges.capacity() * sizeof(CastEdge);
    Bytes += N.Loads.capacity() * sizeof(LoadSub);
    Bytes += N.Stores.capacity() * sizeof(StoreSub);
    Bytes += N.Dispatches.capacity() * sizeof(DispatchSub);
    Bytes += N.ThrowSubs.capacity() * sizeof(uint64_t);
    Bytes += N.ThrowLinks.capacity() * sizeof(uint64_t);
  }
  Bytes += VarCtxIndex.memoryBytes() + FieldSlotIndex.memoryBytes() +
           StaticSlotIndex.memoryBytes() + ThrowSlotIndex.memoryBytes() +
           ThrowLinkDedup.memoryBytes() + ObjIndex.memoryBytes() +
           ReachableSet.memoryBytes() + CallEdgeHead.memoryBytes() +
           EdgeDedup.memoryBytes();
  Bytes += ObjHeaps.capacity() * sizeof(HeapId) +
           ObjHCtxs.capacity() * sizeof(HCtxId);
  Bytes += ReachableList.capacity() * sizeof(std::pair<MethodId, CtxId>);
  Bytes += CallEdges.capacity() * sizeof(CallGraphEdge) +
           CallEdgeNext.capacity() * sizeof(uint32_t);
  return Bytes;
}

void Solver::emitHeartbeat(bool Final) {
  trace::Heartbeat HB;
  HB.Label = Opts.TraceLabel;
  HB.Step = StepCount;
  HB.WorklistDepth = Worklist.size();
  HB.Nodes = Nodes.size();
  HB.Facts = FactCount;
  HB.Objects = ObjHeaps.size();
  HB.MemoryBytes = memoryBytes();
  HB.Final = Final;
  if (Final && Aborted)
    HB.Abort = abortReasonName(Reason);
  HB.Totals = Counters;
  HB.Deltas = Counters.since(LastBeat);
  LastBeat = Counters;
  StepsSinceBeat = 0;
  BeatWatch.restart();
  Opts.Trace->heartbeat(std::move(HB));
}

AnalysisResult Solver::harvest() {
  AnalysisResult Result(Prog, Policy);
  Result.Aborted = Aborted;
  Result.Reason = Reason;
  Result.FaultInjected = FaultInjected;
  Result.SolverNodes = Nodes.size();
  // Everything measured is append-only, so final == peak; computed before
  // the moves below empty the containers.
  Result.PeakBytes = memoryBytes();
  Result.Counters = Counters;
  Result.ObjHeaps = std::move(ObjHeaps);
  Result.ObjHCtxs = std::move(ObjHCtxs);
  Result.CallEdges = std::move(CallEdges);
  Result.Reachable = std::move(ReachableList);

  for (size_t I = 0; I < Nodes.size(); ++I) {
    Node &N = Nodes[I];
    if (N.Set.empty())
      continue;
    std::vector<uint32_t> Objs;
    Objs.reserve(N.Set.size());
    N.Set.forEach([&Objs](uint32_t Obj) { Objs.push_back(Obj); });
    std::sort(Objs.begin(), Objs.end());
    const NodeDesc &D = Descs[I];
    if (D.Kind == NodeKind::VarCtx) {
      Result.VarFacts.push_back(
          {VarId(D.A), CtxId(D.B), std::move(Objs)});
    } else if (D.Kind == NodeKind::FieldSlot) {
      Result.FieldFacts.push_back({D.A, FieldId(D.B), std::move(Objs)});
    } else if (D.Kind == NodeKind::StaticSlot) {
      Result.StaticFacts.push_back({FieldId(D.A), std::move(Objs)});
    } else {
      Result.ThrowFacts.push_back(
          {MethodId(D.A), CtxId(D.B), std::move(Objs)});
    }
  }
  return Result;
}
