//===- pta/Solver.cpp ---------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include "context/Policy.h"
#include "ir/Program.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace pt;

size_t Solver::CallKeyHash::operator()(const CallKey &K) const {
  return static_cast<size_t>(hashWords(K.Words, 4));
}

Solver::Solver(const Program &Prog, ContextPolicy &Policy, SolverOptions Opts)
    : Prog(Prog), Policy(Policy), Opts(Opts), Budget(Opts.TimeBudgetMs) {
  assert(Prog.isFinalized() && "solver needs a finalized program");
}

uint32_t Solver::varNode(VarId V, CtxId Ctx) {
  uint64_t Key = packPair(V.index(), Ctx.index());
  auto It = VarCtxIndex.find(Key);
  if (It != VarCtxIndex.end())
    return It->second;
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  Nodes.emplace_back();
  Descs.push_back({NodeKind::VarCtx, V.index(), Ctx.index()});
  VarCtxIndex.emplace(Key, Idx);
  return Idx;
}

uint32_t Solver::fieldNode(uint32_t Obj, FieldId Fld) {
  uint64_t Key = packPair(Obj, Fld.index());
  auto It = FieldSlotIndex.find(Key);
  if (It != FieldSlotIndex.end())
    return It->second;
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  Nodes.emplace_back();
  Descs.push_back({NodeKind::FieldSlot, Obj, Fld.index()});
  FieldSlotIndex.emplace(Key, Idx);
  return Idx;
}

uint32_t Solver::staticNode(FieldId Fld) {
  auto It = StaticSlotIndex.find(Fld.index());
  if (It != StaticSlotIndex.end())
    return It->second;
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  Nodes.emplace_back();
  Descs.push_back({NodeKind::StaticSlot, Fld.index(), 0});
  StaticSlotIndex.emplace(Fld.index(), Idx);
  return Idx;
}

uint32_t Solver::throwNode(MethodId M, CtxId Ctx) {
  uint64_t Key = packPair(M.index(), Ctx.index());
  auto It = ThrowSlotIndex.find(Key);
  if (It != ThrowSlotIndex.end())
    return It->second;
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  Nodes.emplace_back();
  Descs.push_back({NodeKind::ThrowSlot, M.index(), Ctx.index()});
  ThrowSlotIndex.emplace(Key, Idx);
  return Idx;
}

uint32_t Solver::internObject(HeapId Heap, HCtxId HCtx) {
  uint64_t Key = packPair(Heap.index(), HCtx.index());
  auto It = ObjIndex.find(Key);
  if (It != ObjIndex.end())
    return It->second;
  uint32_t Obj = static_cast<uint32_t>(ObjHeaps.size());
  ObjHeaps.push_back(Heap);
  ObjHCtxs.push_back(HCtx);
  ObjIndex.emplace(Key, Obj);
  return Obj;
}

void Solver::addFact(uint32_t NodeIdx, uint32_t Obj) {
  if (Aborted)
    return;
  Node &N = Nodes[NodeIdx];
  if (!N.Set.insert(Obj).second)
    return;
  ++FactCount;
  if (Opts.MaxFacts != 0 && FactCount > Opts.MaxFacts)
    Aborted = true;
  N.Pending.push_back(Obj);
  if (!N.Queued) {
    N.Queued = true;
    Worklist.push_back(NodeIdx);
  }
}

void Solver::addEdge(uint32_t From, uint32_t To) {
  if (From == To)
    return;
  if (!EdgeDedup.insert(packPair(From, To)).second)
    return;
  Nodes[From].Edges.push_back(To);
  // Replay facts already present at the source.
  // Note: iterate over a copy, since addFact may rehash the set of `From`
  // itself through reentrant graph growth (To == some node whose processing
  // feeds back).  addFact never touches From's Set directly here, but Nodes
  // may reallocate; take the snapshot first.
  std::vector<uint32_t> Snapshot(Nodes[From].Set.begin(),
                                 Nodes[From].Set.end());
  for (uint32_t Obj : Snapshot)
    addFact(To, Obj);
}

void Solver::addCastEdge(uint32_t From, uint32_t To, TypeId Filter) {
  Nodes[From].CastEdges.push_back({To, Filter});
  std::vector<uint32_t> Snapshot(Nodes[From].Set.begin(),
                                 Nodes[From].Set.end());
  for (uint32_t Obj : Snapshot)
    if (Prog.isSubtype(Prog.heap(ObjHeaps[Obj]).Type, Filter))
      addFact(To, Obj);
}

void Solver::ensureReachable(MethodId M, CtxId Ctx) {
  if (Aborted)
    return;
  if (!ReachableSet.insert(packPair(M.index(), Ctx.index())).second)
    return;
  ReachableList.push_back({M, Ctx});

  const MethodInfo &Body = Prog.method(M);

  // ALLOC: RECORD builds the heap context; seed the fact directly
  // (Figure 2, third rule).
  for (const AllocInstr &A : Body.Allocs) {
    HCtxId HCtx = Policy.record(A.Heap, Ctx);
    uint32_t Obj = internObject(A.Heap, HCtx);
    addFact(varNode(A.Var, Ctx), Obj);
  }

  // MOVE: intra-procedural copy edges.
  for (const MoveInstr &Mv : Body.Moves)
    addEdge(varNode(Mv.From, Ctx), varNode(Mv.To, Ctx));

  // Casts: copy edges filtered by the target type.
  for (const CastInstr &C : Body.Casts)
    addCastEdge(varNode(C.From, Ctx), varNode(C.To, Ctx), C.Target);

  // LOAD / STORE: subscribe on the base variable.  Each object that ever
  // reaches the base connects the field slot to the local variable.
  for (const LoadInstr &L : Body.Loads) {
    uint32_t Base = varNode(L.Base, Ctx);
    uint32_t To = varNode(L.To, Ctx);
    Nodes[Base].Loads.push_back({L.Fld, To});
    std::vector<uint32_t> Snapshot(Nodes[Base].Set.begin(),
                                   Nodes[Base].Set.end());
    for (uint32_t Obj : Snapshot)
      addEdge(fieldNode(Obj, L.Fld), To);
  }
  for (const StoreInstr &S : Body.Stores) {
    uint32_t Base = varNode(S.Base, Ctx);
    uint32_t From = varNode(S.From, Ctx);
    Nodes[Base].Stores.push_back({S.Fld, From});
    std::vector<uint32_t> Snapshot(Nodes[Base].Set.begin(),
                                   Nodes[Base].Set.end());
    for (uint32_t Obj : Snapshot)
      addEdge(From, fieldNode(Obj, S.Fld));
  }

  // Static field accesses: global, context-free slots (Doop's model).
  for (const SLoadInstr &L : Body.SLoads)
    addEdge(staticNode(L.Fld), varNode(L.To, Ctx));
  for (const SStoreInstr &S : Body.SStores)
    addEdge(varNode(S.From, Ctx), staticNode(S.Fld));

  // Throws: every object reaching the thrown variable is routed through
  // this frame's handlers (or escapes).
  for (const ThrowInstr &T : Body.Throws) {
    uint32_t VNode = varNode(T.V, Ctx);
    Nodes[VNode].ThrowSubs.push_back(packPair(M.index(), Ctx.index()));
    std::vector<uint32_t> Snapshot(Nodes[VNode].Set.begin(),
                                   Nodes[VNode].Set.end());
    for (uint32_t Obj : Snapshot)
      routeThrow(Obj, M, Ctx);
  }

  // Calls.
  for (InvokeId Inv : Body.Invokes) {
    const InvokeInfo &Call = Prog.invoke(Inv);
    if (Call.IsStatic) {
      // SCALL: MERGESTATIC gives the callee context outright
      // (Figure 2, last rule).
      CtxId CalleeCtx = Policy.mergeStatic(Inv, Ctx);
      wireCall(Inv, Ctx, Call.Target, CalleeCtx);
    } else {
      // VCALL: subscribe on the receiver; dispatch per arriving object
      // (Figure 2, second-to-last rule).
      uint32_t Base = varNode(Call.Base, Ctx);
      Nodes[Base].Dispatches.push_back({Inv, Ctx});
      std::vector<uint32_t> Snapshot(Nodes[Base].Set.begin(),
                                     Nodes[Base].Set.end());
      for (uint32_t Obj : Snapshot)
        dispatch({Inv, Ctx}, Obj);
    }
  }
}

void Solver::routeThrow(uint32_t Obj, MethodId M, CtxId Ctx) {
  TypeId ObjType = Prog.heap(ObjHeaps[Obj]).Type;
  const MethodInfo &Body = Prog.method(M);
  bool Caught = false;
  for (const HandlerInfo &H : Body.Handlers) {
    if (Prog.isSubtype(ObjType, H.CatchType)) {
      addFact(varNode(H.Var, Ctx), Obj);
      Caught = true;
    }
  }
  if (!Caught)
    addFact(throwNode(M, Ctx), Obj);
}

void Solver::addThrowLink(uint32_t ThrowNodeIdx, MethodId CallerM,
                          CtxId CallerCtx) {
  uint64_t Link = packPair(CallerM.index(), CallerCtx.index());
  uint64_t DedupKey =
      mix64(Link) ^ (static_cast<uint64_t>(ThrowNodeIdx) << 1);
  if (!ThrowLinkDedup.insert(DedupKey).second)
    return;
  Nodes[ThrowNodeIdx].ThrowLinks.push_back(Link);
  std::vector<uint32_t> Snapshot(Nodes[ThrowNodeIdx].Set.begin(),
                                 Nodes[ThrowNodeIdx].Set.end());
  for (uint32_t Obj : Snapshot)
    routeThrow(Obj, CallerM, CallerCtx);
}

void Solver::dispatch(const DispatchSub &Sub, uint32_t Obj) {
  const InvokeInfo &Call = Prog.invoke(Sub.Invo);
  HeapId Heap = ObjHeaps[Obj];
  HCtxId HCtx = ObjHCtxs[Obj];
  // LOOKUP(heapT, sig, toMeth).
  MethodId Callee = Prog.lookup(Prog.heap(Heap).Type, Call.Sig);
  if (!Callee.isValid())
    return; // No receiver method: the concrete execution would throw.
  CtxId CalleeCtx = Policy.merge(Heap, HCtx, Sub.Invo, Sub.CallerCtx);
  // THISVAR binding: only this receiver object flows into `this` under the
  // context derived from it.
  const MethodInfo &CalleeInfo = Prog.method(Callee);
  ensureReachable(Callee, CalleeCtx);
  addFact(varNode(CalleeInfo.This, CalleeCtx), Obj);
  wireCall(Sub.Invo, Sub.CallerCtx, Callee, CalleeCtx);
}

void Solver::wireCall(InvokeId Invo, CtxId CallerCtx, MethodId Callee,
                      CtxId CalleeCtx) {
  CallKey Key{{Invo.index(), CallerCtx.index(), Callee.index(),
               CalleeCtx.index()}};
  if (!CallEdgeSet.insert(Key).second)
    return;
  CallEdges.push_back({Invo, CallerCtx, Callee, CalleeCtx});

  ensureReachable(Callee, CalleeCtx);

  // INTERPROCASSIGN: actual -> formal edges (Figure 2, first rule).
  const InvokeInfo &Call = Prog.invoke(Invo);
  const MethodInfo &CalleeInfo = Prog.method(Callee);
  size_t NumArgs = std::min(Call.Actuals.size(), CalleeInfo.Formals.size());
  for (size_t I = 0; I < NumArgs; ++I)
    addEdge(varNode(Call.Actuals[I], CallerCtx),
            varNode(CalleeInfo.Formals[I], CalleeCtx));

  // Return value: formal-return -> actual-return (Figure 2, second rule).
  if (Call.RetTo.isValid() && CalleeInfo.Return.isValid())
    addEdge(varNode(CalleeInfo.Return, CalleeCtx),
            varNode(Call.RetTo, CallerCtx));

  // Exception escalation: what escapes the callee is raised in the
  // calling frame.
  addThrowLink(throwNode(Callee, CalleeCtx), Call.InMethod, CallerCtx);
}

void Solver::processDelta(uint32_t NodeIdx) {
  // Move the pending batch out; reentrant growth appends to a fresh vector.
  std::vector<uint32_t> Delta = std::move(Nodes[NodeIdx].Pending);
  Nodes[NodeIdx].Pending.clear();

  // Subscriptions may grow while we iterate (body instantiation reached
  // through dispatch can add loads on this very node), so use index loops
  // and re-read the vectors from Nodes[NodeIdx] each step.  Subscriptions
  // added mid-processing replay the full set themselves, which includes
  // this delta; processing them again here is idempotent.
  for (size_t DI = 0; DI < Delta.size(); ++DI) {
    if (Aborted)
      return;
    uint32_t Obj = Delta[DI];

    for (size_t I = 0; I < Nodes[NodeIdx].Dispatches.size(); ++I) {
      DispatchSub Sub = Nodes[NodeIdx].Dispatches[I];
      dispatch(Sub, Obj);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].ThrowSubs.size(); ++I) {
      uint64_t Frame = Nodes[NodeIdx].ThrowSubs[I];
      routeThrow(Obj, MethodId(unpackHi(Frame)), CtxId(unpackLo(Frame)));
    }
    for (size_t I = 0; I < Nodes[NodeIdx].ThrowLinks.size(); ++I) {
      uint64_t Frame = Nodes[NodeIdx].ThrowLinks[I];
      routeThrow(Obj, MethodId(unpackHi(Frame)), CtxId(unpackLo(Frame)));
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Loads.size(); ++I) {
      LoadSub Sub = Nodes[NodeIdx].Loads[I];
      addEdge(fieldNode(Obj, Sub.Fld), Sub.ToNode);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Stores.size(); ++I) {
      StoreSub Sub = Nodes[NodeIdx].Stores[I];
      addEdge(Sub.FromNode, fieldNode(Obj, Sub.Fld));
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Edges.size(); ++I) {
      uint32_t To = Nodes[NodeIdx].Edges[I];
      addFact(To, Obj);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].CastEdges.size(); ++I) {
      CastEdge E = Nodes[NodeIdx].CastEdges[I];
      if (Prog.isSubtype(Prog.heap(ObjHeaps[Obj]).Type, E.Filter))
        addFact(E.ToNode, Obj);
    }
  }
}

void Solver::drainWorklist() {
  uint32_t BudgetCheck = 0;
  while (!Worklist.empty()) {
    if (Aborted)
      return;
    if ((++BudgetCheck & 0x3ff) == 0 && Budget.expired()) {
      Aborted = true;
      return;
    }
    uint32_t NodeIdx = Worklist.front();
    Worklist.pop_front();
    Nodes[NodeIdx].Queued = false;
    processDelta(NodeIdx);
  }
}

AnalysisResult Solver::run() {
  assert(!HasRun && "Solver::run may be called once");
  HasRun = true;

  Stopwatch Watch;
  CtxId Initial = Policy.initialContext();
  for (MethodId Entry : Prog.entryPoints())
    ensureReachable(Entry, Initial);
  drainWorklist();

  AnalysisResult Result = harvest();
  Result.SolveMs = Watch.elapsedMs();
  return Result;
}

AnalysisResult Solver::harvest() {
  AnalysisResult Result(Prog, Policy);
  Result.Aborted = Aborted;
  Result.ObjHeaps = std::move(ObjHeaps);
  Result.ObjHCtxs = std::move(ObjHCtxs);
  Result.CallEdges = std::move(CallEdges);
  Result.Reachable = std::move(ReachableList);

  for (size_t I = 0; I < Nodes.size(); ++I) {
    Node &N = Nodes[I];
    if (N.Set.empty())
      continue;
    std::vector<uint32_t> Objs(N.Set.begin(), N.Set.end());
    std::sort(Objs.begin(), Objs.end());
    const NodeDesc &D = Descs[I];
    if (D.Kind == NodeKind::VarCtx) {
      Result.VarFacts.push_back(
          {VarId(D.A), CtxId(D.B), std::move(Objs)});
    } else if (D.Kind == NodeKind::FieldSlot) {
      Result.FieldFacts.push_back({D.A, FieldId(D.B), std::move(Objs)});
    } else if (D.Kind == NodeKind::StaticSlot) {
      Result.StaticFacts.push_back({FieldId(D.A), std::move(Objs)});
    } else {
      Result.ThrowFacts.push_back(
          {MethodId(D.A), CtxId(D.B), std::move(Objs)});
    }
  }
  return Result;
}
