//===- pta/Solver.cpp ---------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include "context/CutShortcut.h"
#include "context/Policy.h"
#include "ir/Program.h"
#include "pta/Trace.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace pt;

Solver::Solver(const Program &Prog, ContextPolicy &Policy, SolverOptions Opts)
    : Prog(Prog), Policy(Policy), CutPlan(Policy.cutPlan()), Opts(Opts),
      Budget(Opts.TimeBudgetMs) {
  assert(Prog.isFinalized() && "solver needs a finalized program");
  // Fault injection for harness self-tests and the robustness matrix
  // (docs/ROBUSTNESS.md).  An explicit plan wins; otherwise pick up the
  // HYBRIDPT_FAULT_PLAN / HYBRIDPT_TEST_BREAK environment plan.  Never set
  // outside tests/CI.
  if (!this->Opts.Faults.any())
    this->Opts.Faults = FaultPlan::fromEnv();
  StepFaultArmed = this->Opts.Faults.OomAtStep != 0 ||
                   this->Opts.Faults.CancelAtStep != 0;
  SlowRuleArmed = this->Opts.Faults.SlowRule != FaultRule::None;
}

void Solver::pollGuards() {
  if (Budget.expired()) {
    abortRun(AbortReason::TimeBudget);
    return;
  }
  if (Opts.Cancel && Opts.Cancel->cancelled()) {
    abortRun(AbortReason::Cancelled);
    return;
  }
  // The memory walk is O(nodes), so sample it on every eighth poll only
  // (~8K budget ticks); overshoot is bounded by one polling interval.
  if (Opts.MemoryBudgetBytes != 0 && (++MemPollTick & 0x7) == 0 &&
      memoryBytes() > Opts.MemoryBudgetBytes)
    abortRun(AbortReason::MemoryBudget);
}

void Solver::pollStepFaults() {
  if (Aborted)
    return;
  if (Opts.Faults.OomAtStep != 0 && StepCount >= Opts.Faults.OomAtStep)
    abortRun(AbortReason::MemoryBudget, /*Injected=*/true);
  else if (Opts.Faults.CancelAtStep != 0 &&
           StepCount >= Opts.Faults.CancelAtStep)
    abortRun(AbortReason::Cancelled, /*Injected=*/true);
}

void Solver::stallForFault() {
  // ~50us busy wait per targeted rule fire: enough to blow any realistic
  // time budget without sleeping through test suites.
  Stopwatch W;
  while (W.elapsedMs() < 0.05) {
  }
}

uint32_t Solver::varNode(VarId V, CtxId Ctx) {
  uint64_t Key = packPair(V.index(), Ctx.index());
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = VarCtxIndex.tryEmplace(Key, Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  Nodes.emplace_back();
  Descs.push_back({NodeKind::VarCtx, V.index(), Ctx.index()});
  return Idx;
}

uint32_t Solver::fieldNode(uint32_t Obj, FieldId Fld) {
  uint64_t Key = packPair(Obj, Fld.index());
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = FieldSlotIndex.tryEmplace(Key, Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  Nodes.emplace_back();
  Descs.push_back({NodeKind::FieldSlot, Obj, Fld.index()});
  return Idx;
}

uint32_t Solver::staticNode(FieldId Fld) {
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = StaticSlotIndex.tryEmplace(Fld.index(), Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  Nodes.emplace_back();
  Descs.push_back({NodeKind::StaticSlot, Fld.index(), 0});
  return Idx;
}

uint32_t Solver::throwNode(MethodId M, CtxId Ctx) {
  uint64_t Key = packPair(M.index(), Ctx.index());
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = ThrowSlotIndex.tryEmplace(Key, Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  Nodes.emplace_back();
  Descs.push_back({NodeKind::ThrowSlot, M.index(), Ctx.index()});
  return Idx;
}

uint32_t Solver::internObject(HeapId Heap, HCtxId HCtx) {
  uint64_t Key = packPair(Heap.index(), HCtx.index());
  uint32_t Obj = static_cast<uint32_t>(ObjHeaps.size());
  auto [Slot, Inserted] = ObjIndex.tryEmplace(Key, Obj);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.ObjectsInterned);
  ObjHeaps.push_back(Heap);
  ObjHCtxs.push_back(HCtx);
  return Obj;
}

bool Solver::addFact(uint32_t NodeIdx, uint32_t Obj) {
  if (Aborted)
    return false;
  // Fact budget: refuse to queue more work once the budget is spent (the
  // old check ran after queueing, letting one extra wave through).
  if (Opts.MaxFacts != 0 && FactCount >= Opts.MaxFacts) {
    abortRun(AbortReason::FactBudget);
    return false;
  }
  Node &N = Nodes[NodeIdx];
  if (!N.Set.insert(Obj)) {
    PT_COUNT(Counters.FactDedupHits);
    return false;
  }
  PT_COUNT(Counters.FactsInserted);
  ++FactCount;
  if (!N.Queued) {
    N.Queued = true;
    Worklist.push_back(NodeIdx);
  }
  return true;
}

uint32_t Solver::provFact(uint32_t NodeIdx, uint32_t Obj) {
  const NodeDesc &D = Descs[NodeIdx];
  prov::Recorder &R = *Opts.Prov;
  switch (D.Kind) {
  case NodeKind::VarCtx:
    return R.internFact(prov::FactKind::VarPointsTo, packPair(D.A, D.B), Obj);
  case NodeKind::FieldSlot:
    return R.internFact(prov::FactKind::FieldPointsTo, packPair(D.A, D.B),
                        Obj);
  case NodeKind::StaticSlot:
    return R.internFact(prov::FactKind::StaticPointsTo, D.A, Obj);
  case NodeKind::ThrowSlot:
    return R.internFact(prov::FactKind::ThrowPointsTo, packPair(D.A, D.B),
                        Obj);
  }
  return prov::InvalidFact;
}

void Solver::noteEdgeWhy(uint32_t From, uint32_t To, prov::Rule Why,
                         uint32_t Aux) {
  if (!provOn())
    return;
  uint64_t Packed = (static_cast<uint64_t>(Aux) << 8) |
                    static_cast<uint64_t>(Why);
  EdgeWhy.tryEmplace(packPair(From, To), Packed);
}

void Solver::noteCastEdgeWhy(uint32_t From, uint32_t To, uint32_t Aux,
                             prov::Rule Why) {
  if (!provOn())
    return;
  uint64_t Packed = (static_cast<uint64_t>(Aux) << 8) |
                    static_cast<uint64_t>(Why);
  CastEdgeWhy.tryEmplace(packPair(From, To), Packed);
}

void Solver::provEdgeStep(uint32_t From, uint32_t To, uint32_t Obj,
                          bool IsCast) {
  const uint64_t *Packed = (IsCast ? CastEdgeWhy : EdgeWhy)
                               .find(packPair(From, To));
  if (!Packed)
    return; // Edge predates the recorder (never happens within one run).
  auto Why = static_cast<prov::Rule>(*Packed & 0xff);
  auto Aux = static_cast<uint32_t>(*Packed >> 8);
  uint32_t Prem = provFact(From, Obj);
  Opts.Prov->step(provFact(To, Obj), Why, Prem, Aux);
}

void Solver::addEdge(uint32_t From, uint32_t To) {
  if (From == To)
    return;
  if (!EdgeDedup.insert(packPair(From, To))) {
    PT_COUNT(Counters.EdgeDedupHits);
    return;
  }
  PT_COUNT(Counters.EdgesAdded);
  Nodes[From].Edges.push_back(To);
  // Replay facts already present at the source.  ObjectSet positions are
  // stable under insertion, so walk by index instead of copying the set;
  // re-read the node each step since Nodes may reallocate through
  // reentrant graph growth.
  uint32_t Count = Nodes[From].Set.size();
  PT_COUNT_ADD(Counters.FactsReplayed, Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Obj = Nodes[From].Set.at(I);
    if (addFact(To, Obj) && provOn())
      provEdgeStep(From, To, Obj, /*IsCast=*/false);
  }
}

bool Solver::passesCastFilter(uint32_t Obj, TypeId Filter) const {
  const HeapInfo &H = Prog.heap(ObjHeaps[Obj]);
  // An invalid filter marks a sanitize edge: pass untainted objects only
  // (SanitizeInstr; docs/CHECKS.md "Taint analysis").
  if (!Filter.isValid())
    return H.TaintTag == 0;
  return Prog.isSubtype(H.Type, Filter);
}

void Solver::addCastEdge(uint32_t From, uint32_t To, TypeId Filter) {
  PT_COUNT(Counters.EdgesAdded);
  Nodes[From].CastEdges.push_back({To, Filter});
  uint32_t Count = Nodes[From].Set.size();
  PT_COUNT_ADD(Counters.FactsReplayed, Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Obj = Nodes[From].Set.at(I);
    PT_COUNT(Counters.RuleCast);
    if (passesCastFilter(Obj, Filter) && addFact(To, Obj) && provOn())
      provEdgeStep(From, To, Obj, /*IsCast=*/true);
  }
}

void Solver::ensureReachable(MethodId M, CtxId Ctx, prov::Rule Why,
                             uint32_t WhyPrem) {
  if (Aborted)
    return;
  if (!ReachableSet.insert(packPair(M.index(), Ctx.index())))
    return;
  PT_COUNT(Counters.MethodsInstantiated);
  ReachableList.push_back({M, Ctx});

  // The Reachable fact anchors every intra-procedural derivation of this
  // body: allocs cite it directly, move/cast/static edges carry it as
  // their auxiliary premise.
  uint32_t RFact = prov::InvalidFact;
  if (provOn())
    RFact = Opts.Prov->recordFact(prov::FactKind::Reachable,
                                  packPair(M.index(), Ctx.index()), 0, Why,
                                  WhyPrem);

  const MethodInfo &Body = Prog.method(M);

  // ALLOC: RECORD builds the heap context; seed the fact directly
  // (Figure 2, third rule).
  for (const AllocInstr &A : Body.Allocs) {
    PT_COUNT(Counters.RuleAlloc);
    slowRule(FaultRule::Alloc);
    HCtxId HCtx = Policy.record(A.Heap, Ctx);
    uint32_t Obj = internObject(A.Heap, HCtx);
    uint32_t VN = varNode(A.Var, Ctx);
    if (addFact(VN, Obj) && provOn())
      Opts.Prov->step(provFact(VN, Obj), prov::Rule::Alloc, RFact);
  }

  // MOVE: intra-procedural copy edges.
  for (const MoveInstr &Mv : Body.Moves) {
    PT_COUNT(Counters.RuleMove);
    slowRule(FaultRule::Move);
    uint32_t FromN = varNode(Mv.From, Ctx), ToN = varNode(Mv.To, Ctx);
    noteEdgeWhy(FromN, ToN, prov::Rule::Move, RFact);
    addEdge(FromN, ToN);
  }

  // Casts: copy edges filtered by the target type.
  for (const CastInstr &C : Body.Casts) {
    slowRule(FaultRule::Cast);
    uint32_t FromN = varNode(C.From, Ctx), ToN = varNode(C.To, Ctx);
    noteCastEdgeWhy(FromN, ToN, RFact);
    addCastEdge(FromN, ToN, C.Target);
  }

  // Sanitize: copy edges filtered by the taint tag (invalid filter type;
  // see passesCastFilter).
  for (const SanitizeInstr &S : Body.Sanitizes) {
    uint32_t FromN = varNode(S.From, Ctx), ToN = varNode(S.To, Ctx);
    noteCastEdgeWhy(FromN, ToN, RFact, prov::Rule::Sanitize);
    addCastEdge(FromN, ToN, TypeId::invalid());
  }

  // LOAD / STORE: subscribe on the base variable.  Each object that ever
  // reaches the base connects the field slot to the local variable.  The
  // replay loops below capture the set size up front: facts arriving
  // mid-replay stay in the node's pending suffix and reach the new
  // subscription through the worklist.
  for (const LoadInstr &L : Body.Loads) {
    slowRule(FaultRule::Load);
    uint32_t Base = varNode(L.Base, Ctx);
    uint32_t To = varNode(L.To, Ctx);
    Nodes[Base].Loads.push_back({L.Fld, To});
    uint32_t Count = Nodes[Base].Set.size();
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t Obj = Nodes[Base].Set.at(I);
      PT_COUNT(Counters.RuleLoad);
      uint32_t FN = fieldNode(Obj, L.Fld);
      if (provOn())
        noteEdgeWhy(FN, To, prov::Rule::Load, provFact(Base, Obj));
      addEdge(FN, To);
    }
  }
  for (uint32_t SI = 0; SI < Body.Stores.size(); ++SI) {
    const StoreInstr &S = Body.Stores[SI];
    // A cut store has no generic subscription: dispatch() wires
    // actual -> receiver.field shortcut edges per call edge instead.
    if (CutPlan && CutPlan->isStoreCut(M, SI))
      continue;
    slowRule(FaultRule::Store);
    uint32_t Base = varNode(S.Base, Ctx);
    uint32_t From = varNode(S.From, Ctx);
    Nodes[Base].Stores.push_back({S.Fld, From});
    uint32_t Count = Nodes[Base].Set.size();
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t Obj = Nodes[Base].Set.at(I);
      PT_COUNT(Counters.RuleStore);
      uint32_t FN = fieldNode(Obj, S.Fld);
      if (provOn())
        noteEdgeWhy(From, FN, prov::Rule::Store, provFact(Base, Obj));
      addEdge(From, FN);
    }
  }

  // Static field accesses: global, context-free slots (Doop's model).
  for (const SLoadInstr &L : Body.SLoads) {
    PT_COUNT(Counters.RuleStaticLoad);
    slowRule(FaultRule::SLoad);
    uint32_t FromN = staticNode(L.Fld), ToN = varNode(L.To, Ctx);
    noteEdgeWhy(FromN, ToN, prov::Rule::StaticLoad, RFact);
    addEdge(FromN, ToN);
  }
  for (const SStoreInstr &S : Body.SStores) {
    PT_COUNT(Counters.RuleStaticStore);
    slowRule(FaultRule::SStore);
    uint32_t FromN = varNode(S.From, Ctx), ToN = staticNode(S.Fld);
    noteEdgeWhy(FromN, ToN, prov::Rule::StaticStore, RFact);
    addEdge(FromN, ToN);
  }

  // Throws: every object reaching the thrown variable is routed through
  // this frame's handlers (or escapes).
  for (const ThrowInstr &T : Body.Throws) {
    uint32_t VNode = varNode(T.V, Ctx);
    Nodes[VNode].ThrowSubs.push_back(packPair(M.index(), Ctx.index()));
    uint32_t Count = Nodes[VNode].Set.size();
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t Obj = Nodes[VNode].Set.at(I);
      routeThrow(Obj, M, Ctx,
                 provOn() ? provFact(VNode, Obj) : prov::InvalidFact);
    }
  }

  // Calls.
  for (InvokeId Inv : Body.Invokes) {
    const InvokeInfo &Call = Prog.invoke(Inv);
    if (Call.IsStatic) {
      // SCALL: MERGESTATIC gives the callee context outright
      // (Figure 2, last rule).
      PT_COUNT(Counters.RuleSCall);
      slowRule(FaultRule::SCall);
      if (Opts.Faults.DropSCall)
        continue; // Injected bug (support/FaultPlan.h): see constructor.
      CtxId CalleeCtx = Policy.mergeStatic(Inv, Ctx);
      wireCall(Inv, Ctx, Call.Target, CalleeCtx, prov::Rule::SCall, RFact);
    } else {
      // VCALL: subscribe on the receiver; dispatch per arriving object
      // (Figure 2, second-to-last rule).
      uint32_t Base = varNode(Call.Base, Ctx);
      Nodes[Base].Dispatches.push_back({Inv, Ctx});
      uint32_t Count = Nodes[Base].Set.size();
      for (uint32_t I = 0; I < Count; ++I)
        dispatch({Inv, Ctx}, Nodes[Base].Set.at(I));
    }
  }
}

void Solver::routeThrow(uint32_t Obj, MethodId M, CtxId Ctx, uint32_t WhyPrem,
                        uint32_t WhyAux) {
  if (checkBudget())
    return;
  PT_COUNT(Counters.RuleThrow);
  slowRule(FaultRule::Throw);
  // A valid aux premise (the call edge) means the object is escalating out
  // of a callee; otherwise it is raised locally by a throw instruction.
  bool Escalating = WhyAux != prov::InvalidFact;
  TypeId ObjType = Prog.heap(ObjHeaps[Obj]).Type;
  const MethodInfo &Body = Prog.method(M);
  bool Caught = false;
  for (const HandlerInfo &H : Body.Handlers) {
    if (Prog.isSubtype(ObjType, H.CatchType)) {
      uint32_t HN = varNode(H.Var, Ctx);
      if (addFact(HN, Obj) && provOn())
        Opts.Prov->step(provFact(HN, Obj),
                        Escalating ? prov::Rule::CatchEscalate
                                   : prov::Rule::CatchBind,
                        WhyPrem, WhyAux);
      Caught = true;
    }
  }
  if (!Caught) {
    uint32_t TN = throwNode(M, Ctx);
    if (addFact(TN, Obj) && provOn())
      Opts.Prov->step(provFact(TN, Obj),
                      Escalating ? prov::Rule::ThrowEscalate
                                 : prov::Rule::ThrowRaise,
                      WhyPrem, WhyAux);
  }
}

void Solver::addThrowLink(uint32_t ThrowNodeIdx, MethodId CallerM,
                          CtxId CallerCtx, uint32_t WhyAux) {
  uint64_t Link = packPair(CallerM.index(), CallerCtx.index());
  uint64_t DedupKey =
      mix64(Link) ^ (static_cast<uint64_t>(ThrowNodeIdx) << 1);
  if (!ThrowLinkDedup.insert(DedupKey))
    return;
  if (provOn())
    ThrowLinkWhy.tryEmplace(DedupKey, WhyAux);
  Nodes[ThrowNodeIdx].ThrowLinks.push_back(Link);
  uint32_t Count = Nodes[ThrowNodeIdx].Set.size();
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Obj = Nodes[ThrowNodeIdx].Set.at(I);
    routeThrow(Obj, CallerM, CallerCtx,
               provOn() ? provFact(ThrowNodeIdx, Obj) : prov::InvalidFact,
               WhyAux);
  }
}

void Solver::dispatch(const DispatchSub &Sub, uint32_t Obj) {
  if (checkBudget())
    return;
  PT_COUNT(Counters.RuleVCall);
  slowRule(FaultRule::VCall);
  const InvokeInfo &Call = Prog.invoke(Sub.Invo);
  HeapId Heap = ObjHeaps[Obj];
  HCtxId HCtx = ObjHCtxs[Obj];
  // LOOKUP(heapT, sig, toMeth).
  MethodId Callee = Prog.lookup(Prog.heap(Heap).Type, Call.Sig);
  if (!Callee.isValid())
    return; // No receiver method: the concrete execution would throw.
  CtxId CalleeCtx = Policy.merge(Heap, HCtx, Sub.Invo, Sub.CallerCtx);
  // Provenance: the receiver fact justifies the call edge, the call edge
  // justifies callee reachability and the this-binding.  The edge fact is
  // interned eagerly (interning is not a derivation step); its own step is
  // recorded by wireCall on the first successful edge insert.
  uint32_t BaseFact = prov::InvalidFact, CEFact = prov::InvalidFact;
  if (provOn()) {
    BaseFact = prov::varPointsTo(*Opts.Prov, Call.Base, Sub.CallerCtx, Obj);
    CEFact = prov::callEdgeFact(*Opts.Prov, Sub.Invo, Sub.CallerCtx, Callee,
                                CalleeCtx);
  }
  // THISVAR binding: only this receiver object flows into `this` under the
  // context derived from it.
  const MethodInfo &CalleeInfo = Prog.method(Callee);
  ensureReachable(Callee, CalleeCtx, prov::Rule::ReachCall, CEFact);
  uint32_t ThisN = varNode(CalleeInfo.This, CalleeCtx);
  if (addFact(ThisN, Obj) && provOn())
    Opts.Prov->step(provFact(ThisN, Obj), prov::Rule::ThisBind, BaseFact,
                    CEFact);
  wireCall(Sub.Invo, Sub.CallerCtx, Callee, CalleeCtx, prov::Rule::VCall,
           BaseFact);

  // Receiver-dependent shortcut edges (context/CutShortcut.h), wired per
  // (call site, receiver object).  This cannot live in wireCall: the call
  // edge dedups by (invoke, ctx, callee, ctx), which collapses distinct
  // receiver objects under a contextless policy.  Everything below is
  // idempotent (edge dedup), matching dispatch's replay semantics.
  if (CutPlan) {
    const CutShortcutPlan::MethodPlan &MP = CutPlan->method(Callee);
    for (const CutShortcutPlan::StoreCut &SC : MP.StoreCuts) {
      if (SC.FormalIdx >= Call.Actuals.size())
        continue; // Arity mismatch: the generic param bind drops it too.
      uint32_t FromN = varNode(Call.Actuals[SC.FormalIdx], Sub.CallerCtx);
      uint32_t FN = fieldNode(Obj, SC.Fld);
      noteEdgeWhy(FromN, FN, prov::Rule::ShortcutStore, CEFact);
      addEdge(FromN, FN);
    }
    if (MP.RetCut && Call.RetTo.isValid()) {
      uint32_t RetN = varNode(Call.RetTo, Sub.CallerCtx);
      for (FieldId F : MP.RetLoads) {
        uint32_t FN = fieldNode(Obj, F);
        noteEdgeWhy(FN, RetN, prov::Rule::ShortcutRetLoad, CEFact);
        addEdge(FN, RetN);
      }
    }
  }
}

bool Solver::insertCallEdge(const CallGraphEdge &E) {
  uint32_t Words[4] = {E.Invo.index(), E.CallerCtx.index(),
                       E.Callee.index(), E.CalleeCtx.index()};
  uint64_t H = hashWords(Words, 4);
  uint32_t NewIdx = static_cast<uint32_t>(CallEdges.size());
  auto [Head, Fresh] = CallEdgeHead.tryEmplace(H, NewIdx);
  uint32_t ChainNext = UINT32_MAX;
  if (!Fresh) {
    for (uint32_t I = *Head; I != UINT32_MAX; I = CallEdgeNext[I]) {
      const CallGraphEdge &X = CallEdges[I];
      if (X.Invo == E.Invo && X.CallerCtx == E.CallerCtx &&
          X.Callee == E.Callee && X.CalleeCtx == E.CalleeCtx)
        return false;
    }
    ChainNext = *Head;
    *Head = NewIdx;
  }
  PT_COUNT(Counters.CallEdgesInserted);
  CallEdges.push_back(E);
  CallEdgeNext.push_back(ChainNext);
  return true;
}

void Solver::wireCall(InvokeId Invo, CtxId CallerCtx, MethodId Callee,
                      CtxId CalleeCtx, prov::Rule CallWhy, uint32_t CallPrem) {
  if (!insertCallEdge({Invo, CallerCtx, Callee, CalleeCtx}))
    return;

  // The call-edge fact: conclusion of VCALL/SCALL, auxiliary premise of
  // every interprocedural binding below.
  uint32_t CEFact = prov::InvalidFact;
  if (provOn())
    CEFact = Opts.Prov->recordFact(
        prov::FactKind::CallEdge, packPair(Invo.index(), CallerCtx.index()),
        packPair(Callee.index(), CalleeCtx.index()), CallWhy, CallPrem);

  ensureReachable(Callee, CalleeCtx, prov::Rule::ReachCall, CEFact);

  // INTERPROCASSIGN: actual -> formal edges (Figure 2, first rule).
  const InvokeInfo &Call = Prog.invoke(Invo);
  const MethodInfo &CalleeInfo = Prog.method(Callee);
  size_t NumArgs = std::min(Call.Actuals.size(), CalleeInfo.Formals.size());
  for (size_t I = 0; I < NumArgs; ++I) {
    uint32_t FromN = varNode(Call.Actuals[I], CallerCtx);
    uint32_t ToN = varNode(CalleeInfo.Formals[I], CalleeCtx);
    noteEdgeWhy(FromN, ToN, prov::Rule::ParamBind, CEFact);
    addEdge(FromN, ToN);
  }

  // Return value: formal-return -> actual-return (Figure 2, second rule).
  // A ret-cut callee (context/CutShortcut.h) drops this merged edge; the
  // receiver-independent shortcuts below cover every definition of the
  // return variable per call edge (receiver-dependent ret-loads are wired
  // in dispatch).
  const CutShortcutPlan::MethodPlan *MP =
      CutPlan ? &CutPlan->method(Callee) : nullptr;
  bool RetCut = MP && MP->RetCut;
  if (Call.RetTo.isValid() && CalleeInfo.Return.isValid() && !RetCut) {
    uint32_t FromN = varNode(CalleeInfo.Return, CalleeCtx);
    uint32_t ToN = varNode(Call.RetTo, CallerCtx);
    noteEdgeWhy(FromN, ToN, prov::Rule::ReturnBind, CEFact);
    addEdge(FromN, ToN);
  }
  if (RetCut && Call.RetTo.isValid()) {
    uint32_t RetN = varNode(Call.RetTo, CallerCtx);
    for (uint32_t Pos : MP->RetArgs) {
      if (Pos >= Call.Actuals.size())
        continue;
      uint32_t FromN = varNode(Call.Actuals[Pos], CallerCtx);
      noteEdgeWhy(FromN, RetN, prov::Rule::ShortcutRetArg, CEFact);
      addEdge(FromN, RetN);
    }
    for (HeapId H : MP->RetAllocs) {
      uint32_t Obj = internObject(H, Policy.record(H, CalleeCtx));
      if (addFact(RetN, Obj) && provOn())
        Opts.Prov->step(provFact(RetN, Obj), prov::Rule::ShortcutRetAlloc,
                        CEFact);
    }
  }

  // Exception escalation: what escapes the callee is raised in the
  // calling frame.
  addThrowLink(throwNode(Callee, CalleeCtx), Call.InMethod, CallerCtx,
               CEFact);
}

void Solver::processDelta(uint32_t NodeIdx) {
  // The pending delta is the set suffix [Scanned, size()): positions are
  // stable, so no batch is moved out — reentrant growth just extends the
  // suffix and the loop picks it up.
  //
  // Subscriptions may grow while we iterate (body instantiation reached
  // through dispatch can add loads on this very node), so use index loops
  // and re-read the vectors from Nodes[NodeIdx] each step.  Subscriptions
  // added mid-processing replay the full set themselves, which includes
  // this delta; processing them again here is idempotent.
  while (true) {
    if (Aborted)
      return;
    {
      Node &N = Nodes[NodeIdx];
      if (N.Scanned >= N.Set.size())
        break;
    }
    uint32_t Obj = Nodes[NodeIdx].Set.at(Nodes[NodeIdx].Scanned++);

    for (size_t I = 0; I < Nodes[NodeIdx].Dispatches.size(); ++I) {
      DispatchSub Sub = Nodes[NodeIdx].Dispatches[I];
      dispatch(Sub, Obj);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].ThrowSubs.size(); ++I) {
      uint64_t Frame = Nodes[NodeIdx].ThrowSubs[I];
      // This node is the thrown variable; its fact is the raise premise.
      routeThrow(Obj, MethodId(unpackHi(Frame)), CtxId(unpackLo(Frame)),
                 provOn() ? provFact(NodeIdx, Obj) : prov::InvalidFact);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].ThrowLinks.size(); ++I) {
      uint64_t Frame = Nodes[NodeIdx].ThrowLinks[I];
      // This node is a callee throw slot; the link's call edge is the aux.
      uint32_t WhyPrem = prov::InvalidFact, WhyAux = prov::InvalidFact;
      if (provOn()) {
        WhyPrem = provFact(NodeIdx, Obj);
        uint64_t DedupKey =
            mix64(Frame) ^ (static_cast<uint64_t>(NodeIdx) << 1);
        if (const uint32_t *Aux = ThrowLinkWhy.find(DedupKey))
          WhyAux = *Aux;
      }
      routeThrow(Obj, MethodId(unpackHi(Frame)), CtxId(unpackLo(Frame)),
                 WhyPrem, WhyAux);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Loads.size(); ++I) {
      LoadSub Sub = Nodes[NodeIdx].Loads[I];
      PT_COUNT(Counters.RuleLoad);
      slowRule(FaultRule::Load);
      uint32_t FN = fieldNode(Obj, Sub.Fld);
      if (provOn())
        noteEdgeWhy(FN, Sub.ToNode, prov::Rule::Load,
                    provFact(NodeIdx, Obj));
      addEdge(FN, Sub.ToNode);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Stores.size(); ++I) {
      StoreSub Sub = Nodes[NodeIdx].Stores[I];
      PT_COUNT(Counters.RuleStore);
      slowRule(FaultRule::Store);
      uint32_t FN = fieldNode(Obj, Sub.Fld);
      if (provOn())
        noteEdgeWhy(Sub.FromNode, FN, prov::Rule::Store,
                    provFact(NodeIdx, Obj));
      addEdge(Sub.FromNode, FN);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Edges.size(); ++I) {
      uint32_t To = Nodes[NodeIdx].Edges[I];
      if (addFact(To, Obj) && provOn())
        provEdgeStep(NodeIdx, To, Obj, /*IsCast=*/false);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].CastEdges.size(); ++I) {
      CastEdge E = Nodes[NodeIdx].CastEdges[I];
      PT_COUNT(Counters.RuleCast);
      slowRule(FaultRule::Cast);
      if (passesCastFilter(Obj, E.Filter) && addFact(E.ToNode, Obj) &&
          provOn())
        provEdgeStep(NodeIdx, E.ToNode, Obj, /*IsCast=*/true);
    }
  }
}

void Solver::drainWorklist() {
  while (!Worklist.empty()) {
    if (Aborted || checkBudget())
      return;
    ++StepCount;
    if (StepFaultArmed) {
      pollStepFaults();
      if (Aborted)
        return;
    }
    uint32_t NodeIdx = Worklist.front();
    Worklist.pop_front();
    PT_COUNT(Counters.WorklistSteps);
    pollHeartbeat();
    Nodes[NodeIdx].Queued = false;
    processDelta(NodeIdx);
  }
}

AnalysisResult Solver::run() {
  assert(!HasRun && "Solver::run may be called once");
  HasRun = true;

  Stopwatch Watch;
  CtxId Initial = Policy.initialContext();
  // Warm start: the fallback ladder seeds a coarser re-run with the
  // aborted finer run's reachable set (see SolverOptions::SeedReachable
  // for the soundness argument).  Seeds go in before the entry points so
  // their bodies instantiate exactly once either way.
  for (MethodId Seed : Opts.SeedReachable)
    ensureReachable(Seed, Initial, prov::Rule::Seed);
  for (MethodId Entry : Prog.entryPoints())
    ensureReachable(Entry, Initial, prov::Rule::Entry);
  drainWorklist();

  // One closing heartbeat regardless of cadence, so every traced run —
  // including aborted ones — leaves a last-known-state record behind
  // (the --explain-abort source).
  if (Opts.Trace)
    emitHeartbeat(/*Final=*/true);

  AnalysisResult Result = harvest();
  Result.SolveMs = Watch.elapsedMs();
  return Result;
}

size_t Solver::memoryBytes() const {
  size_t Bytes = Nodes.capacity() * sizeof(Node) +
                 Descs.capacity() * sizeof(NodeDesc);
  for (const Node &N : Nodes) {
    Bytes += N.Set.memoryBytes();
    Bytes += N.Edges.capacity() * sizeof(uint32_t);
    Bytes += N.CastEdges.capacity() * sizeof(CastEdge);
    Bytes += N.Loads.capacity() * sizeof(LoadSub);
    Bytes += N.Stores.capacity() * sizeof(StoreSub);
    Bytes += N.Dispatches.capacity() * sizeof(DispatchSub);
    Bytes += N.ThrowSubs.capacity() * sizeof(uint64_t);
    Bytes += N.ThrowLinks.capacity() * sizeof(uint64_t);
  }
  Bytes += VarCtxIndex.memoryBytes() + FieldSlotIndex.memoryBytes() +
           StaticSlotIndex.memoryBytes() + ThrowSlotIndex.memoryBytes() +
           ThrowLinkDedup.memoryBytes() + ObjIndex.memoryBytes() +
           ReachableSet.memoryBytes() + CallEdgeHead.memoryBytes() +
           EdgeDedup.memoryBytes();
  Bytes += ObjHeaps.capacity() * sizeof(HeapId) +
           ObjHCtxs.capacity() * sizeof(HCtxId);
  Bytes += ReachableList.capacity() * sizeof(std::pair<MethodId, CtxId>);
  Bytes += CallEdges.capacity() * sizeof(CallGraphEdge) +
           CallEdgeNext.capacity() * sizeof(uint32_t);
  // Provenance costs count against the same budget: the derivation arena
  // plus the edge-justification side maps.
  if (PT_PROV_ACTIVE(Opts.Prov))
    Bytes += Opts.Prov->memoryBytes() + EdgeWhy.memoryBytes() +
             CastEdgeWhy.memoryBytes() + ThrowLinkWhy.memoryBytes();
  return Bytes;
}

void Solver::emitHeartbeat(bool Final) {
  trace::Heartbeat HB;
  HB.Label = Opts.TraceLabel;
  HB.Step = StepCount;
  HB.WorklistDepth = Worklist.size();
  HB.Nodes = Nodes.size();
  HB.Facts = FactCount;
  HB.Objects = ObjHeaps.size();
  HB.MemoryBytes = memoryBytes();
  HB.Final = Final;
  if (Final && Aborted)
    HB.Abort = abortReasonName(Reason);
  HB.Totals = Counters;
  HB.Deltas = Counters.since(LastBeat);
  LastBeat = Counters;
  StepsSinceBeat = 0;
  BeatWatch.restart();
  Opts.Trace->heartbeat(std::move(HB));
}

AnalysisResult Solver::harvest() {
  AnalysisResult Result(Prog, Policy);
  Result.Aborted = Aborted;
  Result.Reason = Reason;
  Result.FaultInjected = FaultInjected;
  Result.SolverNodes = Nodes.size();
  // Everything measured is append-only, so final == peak; computed before
  // the moves below empty the containers.
  Result.PeakBytes = memoryBytes();
  Result.Counters = Counters;
  Result.ObjHeaps = std::move(ObjHeaps);
  Result.ObjHCtxs = std::move(ObjHCtxs);
  Result.CallEdges = std::move(CallEdges);
  Result.Reachable = std::move(ReachableList);

  for (size_t I = 0; I < Nodes.size(); ++I) {
    Node &N = Nodes[I];
    if (N.Set.empty())
      continue;
    std::vector<uint32_t> Objs;
    Objs.reserve(N.Set.size());
    N.Set.forEach([&Objs](uint32_t Obj) { Objs.push_back(Obj); });
    std::sort(Objs.begin(), Objs.end());
    const NodeDesc &D = Descs[I];
    if (D.Kind == NodeKind::VarCtx) {
      Result.VarFacts.push_back(
          {VarId(D.A), CtxId(D.B), std::move(Objs)});
    } else if (D.Kind == NodeKind::FieldSlot) {
      Result.FieldFacts.push_back({D.A, FieldId(D.B), std::move(Objs)});
    } else if (D.Kind == NodeKind::StaticSlot) {
      Result.StaticFacts.push_back({FieldId(D.A), std::move(Objs)});
    } else {
      Result.ThrowFacts.push_back(
          {MethodId(D.A), CtxId(D.B), std::move(Objs)});
    }
  }
  return Result;
}
