//===- pta/Trace.h - Solver trace recording and export ----------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability sink for solver runs: a thread-safe \c TraceRecorder
/// that collects phase/cell spans (parse, fact-gen, solve, metrics, one
/// span per matrix cell) and solver heartbeats, streams them as JSONL to
/// \c --trace-out while the run is live, and exports the whole timeline as
/// a Chrome trace-event file (\c chrome://tracing / Perfetto) so a Table 1
/// matrix run renders as a flame view of cells across worker threads.
///
/// Everything is pull-free: the solver pushes heartbeats at its own pace
/// (every N worklist steps or T milliseconds, see \c SolverOptions), spans
/// are RAII (\c TraceRecorder::Span), and a null recorder pointer makes
/// every call site a no-op — hot paths never test more than one pointer.
///
/// JSONL schema and the counter glossary live in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_TRACE_H
#define HYBRIDPT_PTA_TRACE_H

#include "support/Telemetry.h"
#include "support/Timer.h"

#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pt::trace {

/// One solver heartbeat: a point-in-time snapshot of the fixpoint loop.
struct Heartbeat {
  std::string Label;     ///< Cell label, e.g. "luindex/2obj+H".
  uint64_t Step = 0;     ///< Worklist steps taken so far.
  uint64_t WorklistDepth = 0;
  uint64_t Nodes = 0;    ///< Interned solver nodes.
  uint64_t Facts = 0;    ///< Points-to facts inserted.
  uint64_t Objects = 0;  ///< Interned (heap, hctx) objects.
  uint64_t MemoryBytes = 0; ///< Live container bytes (ObjectSet + FlatMap).
  bool Final = false;    ///< Emitted at end of solve (or on abort).
  /// abortReasonName() of the run's abort on the final heartbeat of an
  /// aborted run; empty otherwise (serialized as "abort_reason").
  std::string Abort;
  telemetry::SolverCounters Totals; ///< Cumulative counters.
  telemetry::SolverCounters Deltas; ///< Change since the prior heartbeat.
  double TMs = 0.0;      ///< Recorder-relative time; filled on record.
};

/// One served request's latency record (docs/SERVING.md): what the daemon
/// streams per answered request instead of solver heartbeats — requests
/// mostly hit warm caches, so the interesting signal is admission-to-reply
/// latency, not worklist progress.
struct RequestRecord {
  uint64_t Id = 0;          ///< Client-chosen request id.
  std::string Kind;         ///< "points-to", "lint", "reload", ...
  std::string Policy;       ///< Policy the answer describes ("" if n/a).
  uint64_t EpochId = 0;     ///< Epoch the answer was computed against.
  std::string Outcome;      ///< "ok", "degraded", "error", "shed".
  std::string Code;         ///< Error code for error/shed outcomes.
  bool CacheHit = false;    ///< Answered from the epoch's result cache.
  double QueueMs = 0.0;     ///< Admission-to-dispatch wait.
  double LatencyMs = 0.0;   ///< Admission-to-reply total.
};

/// Thread-safe trace sink shared by one harness run.
class TraceRecorder {
public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// Starts streaming JSONL records to \p Path (truncates).  Returns
  /// false and sets \p Error when the file cannot be opened.
  bool openJsonl(const std::string &Path, std::string &Error);

  /// Mirrors every heartbeat as a one-line progress report on \p OS
  /// (typically stderr) — the long-cell liveness signal.
  void enableProgress(std::ostream &OS);

  /// Milliseconds since recorder construction (the trace epoch).
  double nowMs() const { return Epoch.elapsedMs(); }

  /// Records a span open/close pair on the calling thread's timeline.
  /// \p ArgsJson is an optional preformatted JSON object ("{"k":v}") that
  /// lands in the JSONL span record and the Chrome event's "args" — the
  /// summary solver tags per-SCC spans with {"scc","depth","methods"} this
  /// way.  Prefer the RAII \c Span wrapper.
  void beginSpan(std::string_view Name, std::string_view Cat,
                 std::string_view ArgsJson = {});
  void endSpan(std::string_view Name, std::string_view Cat, double StartMs,
               std::string_view ArgsJson = {});

  /// Records a heartbeat (streams a JSONL line, remembers it as the
  /// label's latest, mirrors to the progress stream when enabled).
  void heartbeat(Heartbeat HB);

  /// Records a cell's final aggregate counters.
  void counters(std::string_view Label,
                const telemetry::SolverCounters &Counters);

  /// Records one served request (streams a {"type":"request",...} JSONL
  /// line; mirrored to the progress stream when enabled).
  void request(const RequestRecord &R);

  /// Records one fallback-ladder transition for \p Label: rung \p From
  /// aborted for \p Reason after \p SolveMs and the ladder moved on to
  /// \p To ("" = ladder exhausted).  See docs/ROBUSTNESS.md.
  void ladder(std::string_view Label, std::string_view From,
              std::string_view To, std::string_view Reason, double SolveMs);

  /// Copies the most recent heartbeat recorded under \p Label; false when
  /// none was seen (e.g. telemetry compiled out).
  bool lastHeartbeat(std::string_view Label, Heartbeat &Out) const;

  /// Writes the accumulated timeline as a Chrome trace-event JSON file
  /// (begin/end pairs per span, counter series per heartbeat label).
  bool writeChromeTrace(const std::string &Path, std::string &Error) const;

  size_t numSpans() const;
  size_t numHeartbeats() const;

  /// RAII span; a null recorder makes it a no-op.
  class Span {
  public:
    Span(TraceRecorder *Rec, std::string_view Name, std::string_view Cat,
         std::string_view ArgsJson = {})
        : Rec(Rec), Name(Name), Cat(Cat), Args(ArgsJson) {
      if (Rec) {
        StartMs = Rec->nowMs();
        Rec->beginSpan(this->Name, this->Cat, this->Args);
      }
    }
    ~Span() {
      if (Rec)
        Rec->endSpan(Name, Cat, StartMs, Args);
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    TraceRecorder *Rec;
    std::string Name;
    std::string Cat;
    std::string Args;
    double StartMs = 0.0;
  };

private:
  enum class Phase : uint8_t { Begin, End, Counter };

  /// One Chrome trace event, recorded in real time so per-thread begin/end
  /// sequences are well-nested by construction.
  struct Event {
    Phase Ph;
    std::string Name;
    std::string Cat;
    uint32_t Tid;
    double TsMs;
    std::string ArgsJson; ///< Preformatted {"k":v,...}; empty = no args.
  };

  /// Sequential id for the calling thread (first use registers).
  /// Caller must hold Mu.
  uint32_t tidLocked();

  /// Appends one JSONL line (caller must hold Mu).
  void writeLineLocked(const std::string &Line);

  Stopwatch Epoch;
  mutable std::mutex Mu;
  std::vector<Event> Events;
  std::unordered_map<std::string, Heartbeat> LastByLabel;
  std::unordered_map<std::thread::id, uint32_t> TidByThread;
  size_t HeartbeatCount = 0;
  size_t SpanCount = 0;
  std::ofstream Jsonl;
  bool JsonlOpen = false;
  std::ostream *Progress = nullptr;
};

/// Escapes \p S for embedding in a JSON string literal.
std::string jsonEscape(std::string_view S);

} // namespace pt::trace

#endif // HYBRIDPT_PTA_TRACE_H
