//===- pta/Projection.h - Context-insensitive projections -------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The context-insensitive projection of an analysis result: every
/// client-visible relation with its context columns dropped, in a uniform
/// set representation that three producers can fill — the specialized
/// solver, the Datalog reference analysis, and the concrete interpreter.
///
/// This is the comparison currency of the differential correctness
/// harness (docs/CORRECTNESS.md): soundness is "concrete ⊆ abstract",
/// the paper's precision orderings are "refined policy ⊆ coarser policy",
/// and solver/reference equivalence is containment in both directions.
/// All three reduce to \c diffContainment over two \c CiProjection values.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_PROJECTION_H
#define HYBRIDPT_PTA_PROJECTION_H

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace pt {

class AnalysisResult;
class Program;

/// Context-insensitive facts, keyed by raw entity indices so producers do
/// not need to share id interning.
struct CiProjection {
  /// (variable, allocation site).
  std::set<std::pair<uint32_t, uint32_t>> VarPointsTo;
  /// (invocation site, callee method).
  std::set<std::pair<uint32_t, uint32_t>> CallEdges;
  /// Methods reachable in at least one context.
  std::set<uint32_t> ReachableMethods;
  /// (static field, allocation site).
  std::set<std::pair<uint32_t, uint32_t>> StaticFieldPointsTo;
  /// (base allocation site, field, allocation site).
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> FieldPointsTo;
  /// Cast sites that may observe an incompatible object.
  std::set<uint32_t> MayFailCasts;

  size_t totalFacts() const {
    return VarPointsTo.size() + CallEdges.size() + ReachableMethods.size() +
           StaticFieldPointsTo.size() + FieldPointsTo.size() +
           MayFailCasts.size();
  }

  bool operator==(const CiProjection &O) const {
    return VarPointsTo == O.VarPointsTo && CallEdges == O.CallEdges &&
           ReachableMethods == O.ReachableMethods &&
           StaticFieldPointsTo == O.StaticFieldPointsTo &&
           FieldPointsTo == O.FieldPointsTo &&
           MayFailCasts == O.MayFailCasts;
  }
};

/// Projects a solver result down to its context-insensitive facts.
CiProjection ciProject(const AnalysisResult &Result);

/// One fact of \c Fine missing from \c Coarse, rendered human-readable.
struct CiViolation {
  /// Relation the fact belongs to ("VarPointsTo", "MayFailCasts", ...).
  std::string Relation;
  /// Pretty-printed fact plus the two labels, ready to log.
  std::string Detail;
};

/// Appends a violation for every fact of \p Fine not contained in
/// \p Coarse (up to \p MaxPerRelation examples per relation) and returns
/// the *total* number of missing facts.  \p FineLabel / \p CoarseLabel
/// name the producers in the rendered details.
size_t diffContainment(const CiProjection &Fine, const CiProjection &Coarse,
                       const Program &Prog, const std::string &FineLabel,
                       const std::string &CoarseLabel,
                       std::vector<CiViolation> &Out,
                       size_t MaxPerRelation = 5);

} // namespace pt

#endif // HYBRIDPT_PTA_PROJECTION_H
