//===- pta/Explain.h - Precision-delta attribution --------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two analysis results of the *same program* under different
/// context policies and attributes the precision differences: which cast
/// sites changed verdict, which virtual calls became devirtualizable,
/// which spurious objects disappeared from which variables.
///
/// The paper's future-work section observes that progress needs tools "to
/// understand what programming patterns are best handled by hybrid
/// contexts and how"; this module is that tool for this repo — it is how
/// the workload generator's pattern mix was validated.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_EXPLAIN_H
#define HYBRIDPT_PTA_EXPLAIN_H

#include "support/Ids.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pt {

class AnalysisResult;
class Program;

/// One cast site whose verdict improved, with the evidence the coarse
/// analysis had and the refined one eliminated.
struct CastFix {
  uint32_t Site;
  /// Heap sites the coarse analysis thought could reach the cast but the
  /// refined one proves cannot (sorted).
  std::vector<HeapId> RemovedOffenders;
};

/// One virtual call site that became devirtualizable (or deader).
struct CallFix {
  InvokeId Invo;
  /// Spurious targets the refined analysis eliminated (sorted).
  std::vector<MethodId> RemovedTargets;
};

/// The precision delta between two runs over one program.
struct AnalysisDelta {
  /// Casts may-fail under coarse, safe under refined.
  std::vector<CastFix> CastsFixed;
  /// Casts may-fail under both (the shared floor).
  std::vector<uint32_t> CastsStillFailing;
  /// Virtual sites whose target set strictly shrank.
  std::vector<CallFix> CallsRefined;
  /// Context-insensitive (var, heap) pairs removed by refinement.
  size_t VarPointsToPairsRemoved = 0;
  /// Context-insensitive call edges removed.
  size_t CallEdgesRemoved = 0;
  /// Methods no longer reachable.
  size_t MethodsRemoved = 0;
};

/// Computes the delta.  Both results must come from the same \c Program;
/// \p Refined is expected to be the more precise run (entries where the
/// refined analysis is *coarser* are ignored — use a second call with the
/// arguments swapped to see both directions of an incomparable pair).
AnalysisDelta diffResults(const AnalysisResult &Coarse,
                          const AnalysisResult &Refined);

/// Renders the delta as a human-readable report, listing at most
/// \p DetailLimit sites per section with their evidence.
std::string formatDelta(const AnalysisDelta &Delta, const Program &Prog,
                        size_t DetailLimit = 10);

} // namespace pt

#endif // HYBRIDPT_PTA_EXPLAIN_H
