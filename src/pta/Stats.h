//===- pta/Stats.h - Analysis introspection ----------------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Where do an analysis' contexts and facts go?  Computes the
/// distributions behind the paper's cost discussion: contexts per method,
/// the points-to-set size histogram (the paper notes "the median points-to
/// set size is 1, for all analyses and benchmarks" while averages are
/// dragged up by "a small number of library variables with enormous
/// points-to sets"), and the fattest variables/fields/methods by facts.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_STATS_H
#define HYBRIDPT_PTA_STATS_H

#include "support/Ids.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pt {

class AnalysisResult;
class Program;

/// Distribution snapshot of one analysis run.
struct ContextStats {
  /// Contexts per reachable method: max, mean, and the top offenders.
  size_t MaxContextsPerMethod = 0;
  double AvgContextsPerMethod = 0.0;
  std::vector<std::pair<MethodId, size_t>> TopMethodsByContexts;

  /// Context-insensitive points-to set size distribution over variables:
  /// log2 buckets [1], [2], [3-4], [5-8], ... (index i covers sizes
  /// (2^(i-1), 2^i]).
  std::vector<size_t> PointsToSizeHistogram;
  /// Median context-insensitive points-to set size (the paper: 1).
  size_t MedianPointsToSize = 0;

  /// Variables with the largest projected points-to sets.
  std::vector<std::pair<VarId, size_t>> FattestVars;

  /// Per-method share of the context-sensitive fact count.
  std::vector<std::pair<MethodId, size_t>> TopMethodsByFacts;
};

/// Computes the distributions; top lists are capped at \p TopN entries.
ContextStats computeStats(const AnalysisResult &Result, size_t TopN = 10);

/// Human-readable rendering.
std::string formatStats(const ContextStats &Stats, const Program &Prog);

} // namespace pt

#endif // HYBRIDPT_PTA_STATS_H
