//===- pta/Explain.cpp --------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/Explain.h"

#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "pta/Clients.h"
#include "support/Hashing.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace pt;

namespace {

std::set<uint64_t> ciVarPairs(const AnalysisResult &R) {
  std::set<uint64_t> Out;
  for (const auto &E : R.VarFacts)
    for (uint32_t Obj : E.Objs)
      Out.insert(packPair(E.Var.index(), R.objHeap(Obj).index()));
  return Out;
}

std::set<uint64_t> ciCallEdges(const AnalysisResult &R) {
  std::set<uint64_t> Out;
  for (const CallGraphEdge &E : R.CallEdges)
    Out.insert(packPair(E.Invo.index(), E.Callee.index()));
  return Out;
}

size_t countMissing(const std::set<uint64_t> &Coarse,
                    const std::set<uint64_t> &Refined) {
  size_t N = 0;
  for (uint64_t P : Coarse)
    N += Refined.find(P) == Refined.end();
  return N;
}

} // namespace

AnalysisDelta pt::diffResults(const AnalysisResult &Coarse,
                              const AnalysisResult &Refined) {
  AnalysisDelta Delta;

  // Cast verdicts with offender evidence from both sides.
  auto CoarseCasts = checkCasts(Coarse);
  auto RefinedCasts = checkCasts(Refined);
  std::unordered_map<uint32_t, const CastCheck *> RefinedBySite;
  for (const CastCheck &C : RefinedCasts)
    RefinedBySite.emplace(C.Site, &C);
  for (const CastCheck &C : CoarseCasts) {
    if (C.Verdict != CastVerdict::MayFail)
      continue;
    auto It = RefinedBySite.find(C.Site);
    bool RefinedFails =
        It != RefinedBySite.end() &&
        It->second->Verdict == CastVerdict::MayFail;
    if (RefinedFails) {
      Delta.CastsStillFailing.push_back(C.Site);
      continue;
    }
    CastFix Fix;
    Fix.Site = C.Site;
    const std::vector<HeapId> *RefinedOffenders =
        It != RefinedBySite.end() ? &It->second->Offenders : nullptr;
    for (HeapId H : C.Offenders) {
      bool StillThere =
          RefinedOffenders &&
          std::binary_search(RefinedOffenders->begin(),
                             RefinedOffenders->end(), H);
      if (!StillThere)
        Fix.RemovedOffenders.push_back(H);
    }
    Delta.CastsFixed.push_back(std::move(Fix));
  }

  // Devirtualization deltas.
  auto CoarseSites = devirtualizeCalls(Coarse);
  auto RefinedSites = devirtualizeCalls(Refined);
  std::unordered_map<uint32_t, const DevirtSite *> RefinedByInvo;
  for (const DevirtSite &S : RefinedSites)
    RefinedByInvo.emplace(S.Invo.index(), &S);
  for (const DevirtSite &S : CoarseSites) {
    auto It = RefinedByInvo.find(S.Invo.index());
    const std::vector<MethodId> Empty;
    const std::vector<MethodId> &After =
        It != RefinedByInvo.end() ? It->second->Targets : Empty;
    CallFix Fix;
    Fix.Invo = S.Invo;
    for (MethodId T : S.Targets)
      if (!std::binary_search(After.begin(), After.end(), T))
        Fix.RemovedTargets.push_back(T);
    if (!Fix.RemovedTargets.empty())
      Delta.CallsRefined.push_back(std::move(Fix));
  }

  Delta.VarPointsToPairsRemoved =
      countMissing(ciVarPairs(Coarse), ciVarPairs(Refined));
  Delta.CallEdgesRemoved =
      countMissing(ciCallEdges(Coarse), ciCallEdges(Refined));

  auto CoarseReach = Coarse.reachableMethods();
  auto RefinedReach = Refined.reachableMethods();
  for (MethodId M : CoarseReach)
    Delta.MethodsRemoved +=
        !std::binary_search(RefinedReach.begin(), RefinedReach.end(), M);
  return Delta;
}

std::string pt::formatDelta(const AnalysisDelta &Delta, const Program &Prog,
                            size_t DetailLimit) {
  std::ostringstream OS;
  OS << "precision delta: " << Delta.CastsFixed.size()
     << " casts fixed, " << Delta.CastsStillFailing.size()
     << " still failing; " << Delta.CallsRefined.size()
     << " call sites refined; " << Delta.VarPointsToPairsRemoved
     << " spurious var-points-to pairs, " << Delta.CallEdgesRemoved
     << " spurious call edges, " << Delta.MethodsRemoved
     << " unreachable methods removed\n";

  size_t Shown = 0;
  for (const CastFix &Fix : Delta.CastsFixed) {
    if (++Shown > DetailLimit) {
      OS << "  ... (" << (Delta.CastsFixed.size() - DetailLimit)
         << " more fixed casts)\n";
      break;
    }
    const CastSite &Site = Prog.castSite(Fix.Site);
    OS << "  fixed: (" << Prog.text(Prog.type(Site.Target).Name)
       << ") cast in " << Prog.qualifiedName(Site.InMethod)
       << "; eliminated:";
    size_t N = 0;
    for (HeapId H : Fix.RemovedOffenders) {
      if (++N > 3) {
        OS << " ...";
        break;
      }
      OS << ' ' << Prog.text(Prog.heap(H).Name);
    }
    OS << '\n';
  }

  Shown = 0;
  for (const CallFix &Fix : Delta.CallsRefined) {
    if (++Shown > DetailLimit) {
      OS << "  ... (" << (Delta.CallsRefined.size() - DetailLimit)
         << " more refined call sites)\n";
      break;
    }
    const InvokeInfo &Call = Prog.invoke(Fix.Invo);
    OS << "  refined: " << Prog.text(Call.Name) << " in "
       << Prog.qualifiedName(Call.InMethod) << "; no longer targets:";
    size_t N = 0;
    for (MethodId T : Fix.RemovedTargets) {
      if (++N > 3) {
        OS << " ...";
        break;
      }
      OS << ' ' << Prog.qualifiedName(T);
    }
    OS << '\n';
  }
  return OS.str();
}
