//===- pta/summary/Condense.cpp --------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/summary/Condense.h"

#include "ir/Program.h"

#include <algorithm>
#include <limits>

using namespace pt;
using namespace pt::summary;

namespace {
constexpr uint32_t Unvisited = std::numeric_limits<uint32_t>::max();
} // namespace

Condensation
pt::summary::condenseGraph(uint32_t NumNodes,
                           const std::vector<std::vector<uint32_t>> &Succ) {
  Condensation C;
  C.SccOf.assign(NumNodes, Unvisited);

  // Iterative Tarjan.  Each DFS frame remembers how far into its node's
  // successor list it got, so the loop resumes exactly where the recursive
  // formulation would return to.
  std::vector<uint32_t> Index(NumNodes, Unvisited);
  std::vector<uint32_t> Low(NumNodes, 0);
  std::vector<uint32_t> Stack;
  std::vector<char> OnStack(NumNodes, 0);
  struct Frame {
    uint32_t Node;
    uint32_t EdgePos;
  };
  std::vector<Frame> Dfs;
  uint32_t NextIndex = 0;

  for (uint32_t Root = 0; Root < NumNodes; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;
    Dfs.push_back({Root, 0});
    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      uint32_t V = F.Node;
      if (F.EdgePos < Succ[V].size()) {
        uint32_t W = Succ[V][F.EdgePos++];
        if (Index[W] == Unvisited) {
          Index[W] = Low[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = 1;
          Dfs.push_back({W, 0});
        } else if (OnStack[W] && Index[W] < Low[V]) {
          Low[V] = Index[W];
        }
        continue;
      }
      Dfs.pop_back();
      if (!Dfs.empty()) {
        uint32_t Parent = Dfs.back().Node;
        if (Low[V] < Low[Parent])
          Low[Parent] = Low[V];
      }
      if (Low[V] == Index[V]) {
        // V roots a component; everything above it on the stack belongs
        // to it.  Emission happens only after every reachable component
        // below has been emitted, so component ids ascend bottom-up.
        uint32_t Scc = C.NumSCCs++;
        C.Members.emplace_back();
        while (true) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          C.SccOf[W] = Scc;
          C.Members.back().push_back(W);
          if (W == V)
            break;
        }
        std::sort(C.Members.back().begin(), C.Members.back().end());
      }
    }
  }

  // Condensed edges caller-component -> callee-component, deduplicated.
  C.Succs.assign(C.NumSCCs, {});
  for (uint32_t V = 0; V < NumNodes; ++V) {
    uint32_t From = C.SccOf[V];
    for (uint32_t W : Succ[V]) {
      uint32_t To = C.SccOf[W];
      if (From != To)
        C.Succs[From].push_back(To);
    }
  }
  for (std::vector<uint32_t> &S : C.Succs) {
    std::sort(S.begin(), S.end());
    S.erase(std::unique(S.begin(), S.end()), S.end());
  }

  // Bottom-up order: callee components got smaller Tarjan emission ids,
  // so ascending id order IS the sweep order.
  C.Topo.resize(C.NumSCCs);
  C.TopoRank.resize(C.NumSCCs);
  for (uint32_t S = 0; S < C.NumSCCs; ++S) {
    C.Topo[S] = S;
    C.TopoRank[S] = S;
  }

  // Depth over the DAG: successors have smaller ids, so one ascending
  // pass sees every callee's depth before its callers.
  C.Depth.assign(C.NumSCCs, 0);
  for (uint32_t S = 0; S < C.NumSCCs; ++S)
    for (uint32_t T : C.Succs[S])
      if (C.Depth[T] + 1 > C.Depth[S])
        C.Depth[S] = C.Depth[T] + 1;

  return C;
}

std::vector<std::vector<uint32_t>>
pt::summary::buildStaticCallGraph(const Program &Prog) {
  uint32_t NumM = static_cast<uint32_t>(Prog.numMethods());
  std::vector<std::vector<uint32_t>> Out(NumM);

  // Instantiated types, RTA-style: every heap site's type counts because
  // reachability is unknown before the solve.
  std::vector<char> Instantiated(Prog.numTypes(), 0);
  std::vector<TypeId> InstTypes;
  for (size_t H = 0; H < Prog.numHeaps(); ++H) {
    TypeId T = Prog.heap(HeapId::fromIndex(H)).Type;
    if (!Instantiated[T.index()]) {
      Instantiated[T.index()] = 1;
      InstTypes.push_back(T);
    }
  }

  // Per-signature virtual-callee cache: lookup(T, sig) over instantiated
  // types, deduplicated.  Signatures repeat across call sites, so this
  // turns the RTA sweep from O(sites * types) lookups into O(sigs * types).
  std::vector<char> SigCached(Prog.numSigs(), 0);
  std::vector<std::vector<uint32_t>> SigCallees(Prog.numSigs());
  auto virtualCallees = [&](SigId Sig) -> const std::vector<uint32_t> & {
    uint32_t SI = Sig.index();
    if (!SigCached[SI]) {
      SigCached[SI] = 1;
      std::vector<uint32_t> &Callees = SigCallees[SI];
      for (TypeId T : InstTypes) {
        MethodId M = Prog.lookup(T, Sig);
        if (M.isValid())
          Callees.push_back(M.index());
      }
      std::sort(Callees.begin(), Callees.end());
      Callees.erase(std::unique(Callees.begin(), Callees.end()),
                    Callees.end());
    }
    return SigCallees[SI];
  };

  for (uint32_t MI = 0; MI < NumM; ++MI) {
    const MethodInfo &M = Prog.method(MethodId(MI));
    std::vector<uint32_t> &Callees = Out[MI];
    for (InvokeId Invo : M.Invokes) {
      const InvokeInfo &Call = Prog.invoke(Invo);
      if (Call.IsStatic) {
        if (Call.Target.isValid())
          Callees.push_back(Call.Target.index());
      } else {
        const std::vector<uint32_t> &VC = virtualCallees(Call.Sig);
        Callees.insert(Callees.end(), VC.begin(), VC.end());
      }
    }
    std::sort(Callees.begin(), Callees.end());
    Callees.erase(std::unique(Callees.begin(), Callees.end()), Callees.end());
  }
  return Out;
}

Condensation pt::summary::condenseProgram(const Program &Prog) {
  return condenseGraph(static_cast<uint32_t>(Prog.numMethods()),
                       buildStaticCallGraph(Prog));
}
