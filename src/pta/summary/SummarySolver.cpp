//===- pta/summary/SummarySolver.cpp ---------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The compositional SCC engine.  One Partition per call-graph SCC, each a
// mini difference-propagation solver structurally identical to pta/Solver
// over the nodes it owns:
//
//   (var, ctx)      -> partition of the variable's defining method
//   throw (m, ctx)  -> partition of m
//   field (obj, f)  -> partition of the method containing obj's alloc site
//   static f        -> f mod #partitions (static slots are global anyway)
//
// Facts and edges whose endpoints live in different partitions travel as
// messages.  A cross-partition *edge target* is represented by a local
// "portal" node interned under the exact remote key: edges into it use the
// ordinary exact (from, to) dedup and fact replay, and the portal's delta
// processing forwards each newly arriving object to the owner partition as
// a Fact message (the portal's own set dedups repeat sends).  This keeps
// every dedup structure exact — a hashed wide-key dedup could collide and
// silently drop a constraint, which would be unsound.
//
// All message applications are idempotent and the rule system is monotone,
// so the engine terminates at the same unique least fixpoint as the
// worklist solver under any schedule; termination is detected by the
// partition state machine (Idle/Queued/Running + in-flight task counter):
// a message to an Idle partition schedules a drain, a drain goes Idle only
// after observing an empty inbox under the inbox lock, and when no drains
// are in flight every inbox is empty and every worklist drained.
//
//===----------------------------------------------------------------------===//

#include "pta/summary/SummarySolver.h"

#include "context/CutShortcut.h"
#include "context/Policy.h"
#include "ir/Program.h"
#include "pta/Trace.h"
#include "pta/summary/Condense.h"
#include "support/Hashing.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

using namespace pt;
using namespace pt::summary;

const char *pt::solverEngineName(SolverEngine E) {
  return E == SolverEngine::Summary ? "summary" : "worklist";
}

bool pt::parseSolverEngine(std::string_view Name, SolverEngine &Out) {
  if (Name == "worklist") {
    Out = SolverEngine::Worklist;
    return true;
  }
  if (Name == "summary") {
    Out = SolverEngine::Summary;
    return true;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Global object interner
// ---------------------------------------------------------------------------

/// (heap, hctx) -> dense object id, shared by all partitions so object ids
/// mean the same thing in every message.  Inserts take a mutex; reads are
/// lock-free over chunked storage whose chunks never move, so a partition
/// can resolve an object it learned from a message without synchronizing —
/// the happens-before edge comes with the message (inbox mutex).
class ObjInterner {
public:
  static constexpr uint32_t ChunkShift = 12;
  static constexpr uint32_t ChunkSize = 1u << ChunkShift;
  static constexpr uint32_t MaxChunks = 1u << 16;

  ObjInterner() : Chunks(new std::atomic<uint64_t *>[MaxChunks]()) {}

  ~ObjInterner() {
    for (uint32_t I = 0; I < MaxChunks; ++I)
      delete[] Chunks[I].load(std::memory_order_relaxed);
  }

  /// Interns (\p Heap, \p HCtx); \p Fresh reports a first sighting.
  uint32_t intern(HeapId Heap, HCtxId HCtx, bool &Fresh) {
    std::lock_guard<std::mutex> Lock(Mu);
    uint32_t Obj = NextId;
    auto [Slot, Inserted] =
        Index.tryEmplace(packPair(Heap.index(), HCtx.index()), Obj);
    Fresh = Inserted;
    if (!Inserted)
      return *Slot;
    uint32_t Chunk = Obj >> ChunkShift;
    assert(Chunk < MaxChunks && "object id space overflow");
    uint64_t *Block = Chunks[Chunk].load(std::memory_order_relaxed);
    if (!Block) {
      Block = new uint64_t[ChunkSize];
      Chunks[Chunk].store(Block, std::memory_order_release);
    }
    Block[Obj & (ChunkSize - 1)] = packPair(Heap.index(), HCtx.index());
    ++NextId;
    Count.store(NextId, std::memory_order_release);
    return Obj;
  }

  HeapId heapOf(uint32_t Obj) const { return HeapId(unpackHi(slot(Obj))); }
  HCtxId hctxOf(uint32_t Obj) const { return HCtxId(unpackLo(slot(Obj))); }

  uint32_t size() const { return Count.load(std::memory_order_acquire); }

  /// Exports the id -> (heap, hctx) tables; call only after the sweep.
  void exportTables(std::vector<HeapId> &Heaps,
                    std::vector<HCtxId> &HCtxs) const {
    uint32_t N = size();
    Heaps.reserve(N);
    HCtxs.reserve(N);
    for (uint32_t Obj = 0; Obj < N; ++Obj) {
      uint64_t S = slot(Obj);
      Heaps.push_back(HeapId(unpackHi(S)));
      HCtxs.push_back(HCtxId(unpackLo(S)));
    }
  }

  size_t memoryBytes() const {
    std::lock_guard<std::mutex> Lock(Mu);
    size_t Chunked = 0;
    for (uint32_t I = 0; I < MaxChunks; ++I)
      if (Chunks[I].load(std::memory_order_relaxed))
        Chunked += ChunkSize * sizeof(uint64_t);
    return Chunked + Index.memoryBytes();
  }

private:
  uint64_t slot(uint32_t Obj) const {
    return Chunks[Obj >> ChunkShift].load(std::memory_order_acquire)
        [Obj & (ChunkSize - 1)];
  }

  std::unique_ptr<std::atomic<uint64_t *>[]> Chunks;
  mutable std::mutex Mu;
  FlatMap<uint32_t> Index;
  uint32_t NextId = 0;
  std::atomic<uint32_t> Count{0};
};

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Node-key kinds as they appear in messages (always a real node kind of
/// the owner partition, never a portal).
enum class NK : uint8_t { VarCtx, FieldSlot, StaticSlot, ThrowSlot };

enum class MsgKind : uint8_t {
  Reach,      ///< ensureReachable(A = method, B = ctx).
  Fact,       ///< addFact(node(NKey, A, B), Obj).
  Edge,       ///< addEdge(node(NKey, A, B) -> ref (RefPart, RefKey, RefA,
              ///  RefB)); the source key is local to the receiver.
  ThrowLink,  ///< link throw slot (A = callee m, B = callee ctx) to caller
              ///  frame (RefPart, RefA = caller m, RefB = caller ctx).
  RouteThrow, ///< routeThrow(Obj, A = method, B = ctx).
};

/// Sentinel for Msg::WhyRule: the receiver must not record a derivation
/// step (either provenance is off, or the step was already recorded on the
/// sender side — portal-forwarded facts record at portal-insert time, since
/// the portal's descriptor is the remote fact key).
constexpr uint8_t WhyNone = 0xFF;

struct Msg {
  MsgKind Kind;
  NK NKey = NK::VarCtx;
  NK RefKey = NK::VarCtx;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t Obj = 0;
  uint32_t RefPart = 0;
  uint32_t RefA = 0;
  uint32_t RefB = 0;
  // Provenance payload: fact ids are global (the recorder is shared), so
  // they travel across partitions unchanged.  Reach carries (rule, prem);
  // Fact carries the full step; Edge carries the justification the
  // receiver stores in its EdgeWhy map; RouteThrow/ThrowLink carry the
  // throw-fact premise and the call-edge aux.
  uint8_t WhyRule = WhyNone;
  uint32_t WhyPrem = prov::InvalidFact;
  uint32_t WhyAux = prov::InvalidFact;
};

// ---------------------------------------------------------------------------
// Partition solver
// ---------------------------------------------------------------------------

/// Local node kinds: the four solver kinds plus portal stand-ins for
/// remote edge targets (one per remote key shape).
enum class PK : uint8_t {
  VarCtx,
  FieldSlot,
  StaticSlot,
  ThrowSlot,
  PortalVar,
  PortalField,
  PortalStatic,
};

inline bool isPortal(PK K) { return K >= PK::PortalVar; }

/// Exact key for the per-partition MERGE cache.  merge() takes four ids —
/// too wide for a packed FlatMap key, and a *hashed* key could collide and
/// return the wrong context, so this map compares the full tuple.
struct MergeKey {
  uint32_t W[4];
  bool operator==(const MergeKey &O) const {
    return W[0] == O.W[0] && W[1] == O.W[1] && W[2] == O.W[2] &&
           W[3] == O.W[3];
  }
};
struct MergeKeyHash {
  size_t operator()(const MergeKey &K) const {
    return static_cast<size_t>(hashWords(K.W, 4));
  }
};

enum class PState : uint8_t { Idle, Queued, Running };

class Engine;

class Partition {
public:
  Partition(Engine &E, uint32_t Id);

  void apply(const Msg &M);
  void drainWorklist();
  void ensureReachable(MethodId M, CtxId Ctx,
                       prov::Rule Why = prov::Rule::Entry,
                       uint32_t WhyPrem = prov::InvalidFact);

  /// Bytes held by this partition's persistent containers.
  size_t memoryBytes() const;

  /// Copies the telemetry counters into the atomic snapshot array so the
  /// heartbeat thread can read them without a data race.
  void publishCounters() {
    size_t I = 0;
#define PT_PUB(Field, Name)                                                    \
  CounterSnap[I++].store(Counters.Field, std::memory_order_relaxed);
    PT_SOLVER_COUNTERS(PT_PUB)
#undef PT_PUB
    NodesA.store(Nodes.size(), std::memory_order_relaxed);
  }

  Engine &E;
  const uint32_t Id;

  struct CastEdge {
    uint32_t ToNode;
    TypeId Filter;
  };
  struct LoadSub {
    FieldId Fld;
    uint32_t ToNode;
  };
  struct StoreSub {
    FieldId Fld;
    uint32_t FromNode;
  };
  struct DispatchSub {
    InvokeId Invo;
    CtxId CallerCtx;
  };
  /// One exception-escalation link out of a throw slot; \c Part may be a
  /// different partition (fired as a RouteThrow message).  \c WhyAux is
  /// the call-edge fact justifying the link (provenance only).
  struct TLink {
    uint32_t Part;
    uint32_t M;
    uint32_t Ctx;
    uint32_t WhyAux = prov::InvalidFact;
  };

  struct Node {
    ObjectSet Set;
    uint32_t Scanned = 0;
    std::vector<uint32_t> Edges;
    std::vector<CastEdge> CastEdges;
    std::vector<LoadSub> Loads;
    std::vector<StoreSub> Stores;
    std::vector<DispatchSub> Dispatches;
    std::vector<uint64_t> ThrowSubs; ///< Packed (method, ctx) frames.
    std::vector<TLink> ThrowLinks;
    bool Queued = false;
  };
  struct Desc {
    PK Kind;
    uint32_t A;
    uint32_t B;
  };

  std::vector<Node> Nodes;
  std::vector<Desc> Descs;
  /// Owner partition of each portal node (0 for real nodes).
  std::vector<uint32_t> DestPart;

  FlatMap<uint32_t> VarCtxIndex;
  FlatMap<uint32_t> FieldSlotIndex;
  FlatMap<uint32_t> StaticSlotIndex;
  FlatMap<uint32_t> ThrowSlotIndex;
  FlatMap<uint32_t> PortalVarIndex;
  FlatMap<uint32_t> PortalFieldIndex;
  FlatMap<uint32_t> PortalStaticIndex;
  FlatSet EdgeDedup;

  /// Provenance: object-independent justification per (from, to) edge,
  /// value = (aux fact id << 8) | rule — same first-wins discipline as the
  /// worklist solver's maps.  Empty when provenance is off.
  FlatMap<uint64_t> EdgeWhy;
  FlatMap<uint64_t> CastEdgeWhy;

  FlatSet ReachableSet;
  std::vector<std::pair<MethodId, CtxId>> ReachableList;
  /// (method, ctx) summary requests already forwarded to other owners —
  /// keeps repeated dispatches from flooding the owner with Reach msgs.
  FlatSet SentReach;

  FlatMap<uint32_t> CallEdgeHead;
  std::vector<uint32_t> CallEdgeNext;
  std::vector<CallGraphEdge> CallEdges;

  std::deque<uint32_t> Worklist;

  // Policy caches: the policy object is shared (and stateful), so calls
  // take the engine's policy mutex; these make repeats lock-free.
  FlatMap<uint32_t> RecordCache;      ///< packPair(heap, ctx) -> hctx.
  FlatMap<uint32_t> MergeStaticCache; ///< packPair(invo, ctx) -> ctx.
  std::unordered_map<MergeKey, uint32_t, MergeKeyHash> MergeCache;
  FlatMap<uint32_t> ObjCache; ///< packPair(heap, hctx) -> global obj id.

  std::mutex InboxMu;
  std::vector<Msg> Inbox;
  PState State = PState::Idle;

  telemetry::SolverCounters Counters;
  uint32_t BudgetTick = 0;
  uint32_t MemPollTick = 0;
  uint64_t Activations = 0;

  // Published for the heartbeat thread (plain members are owned by the
  // single thread currently draining this partition).
  std::atomic<uint64_t> MemBytesA{0};
  std::atomic<uint64_t> BusyUs{0};
  std::atomic<uint64_t> NodesA{0};
  std::unique_ptr<std::atomic<uint64_t>[]> CounterSnap;

private:
  bool aborted() const;
  bool checkBudget() {
    if (!aborted() && (++BudgetTick & 0x3ff) == 0)
      pollGuards();
    return aborted();
  }
  void pollGuards();
  void slowRule(FaultRule Rule);

  uint32_t newNode(Desc D) {
    uint32_t Idx = static_cast<uint32_t>(Nodes.size());
    Nodes.emplace_back();
    Descs.push_back(D);
    DestPart.push_back(0);
    return Idx;
  }
  uint32_t varNode(VarId V, CtxId Ctx);
  uint32_t fieldNode(uint32_t Obj, FieldId Fld);
  uint32_t staticNode(FieldId Fld);
  uint32_t throwNode(MethodId M, CtxId Ctx);
  uint32_t portalNode(NK Key, uint32_t A, uint32_t B, uint32_t Owner);
  uint32_t internNode(NK Key, uint32_t A, uint32_t B);

  uint32_t internObject(HeapId Heap, HCtxId HCtx);

  /// Returns true on a fresh insert (callers record provenance then).
  bool addFact(uint32_t NodeIdx, uint32_t Obj);
  void addEdge(uint32_t From, uint32_t To);
  void addCastEdge(uint32_t From, uint32_t To, TypeId Filter);
  void addThrowLink(uint32_t ThrowNodeIdx, uint32_t CallerPart,
                    uint32_t CallerM, uint32_t CallerCtx,
                    uint32_t WhyAux = prov::InvalidFact);
  void fireThrowLink(const TLink &L, uint32_t Obj,
                     uint32_t WhyPrem = prov::InvalidFact);
  void routeThrow(uint32_t Obj, MethodId M, CtxId Ctx,
                  uint32_t WhyPrem = prov::InvalidFact,
                  uint32_t WhyAux = prov::InvalidFact);
  void dispatch(const DispatchSub &Sub, uint32_t Obj);
  void wireCall(InvokeId Invo, CtxId CallerCtx, MethodId Callee,
                CtxId CalleeCtx, prov::Rule CallWhy = prov::Rule::SCall,
                uint32_t CallPrem = prov::InvalidFact);
  bool insertCallEdge(const CallGraphEdge &E);
  void processDelta(uint32_t NodeIdx);

  /// Requests summary (method, ctx) from its owner (locally or by msg).
  void reach(MethodId M, CtxId Ctx, prov::Rule Why = prov::Rule::Entry,
             uint32_t WhyPrem = prov::InvalidFact);
  /// Delivers \p Obj into (\p V, \p Ctx) wherever that variable lives.
  void factToVar(VarId V, CtxId Ctx, uint32_t Obj,
                 prov::Rule Why = prov::Rule::Entry,
                 uint32_t WhyPrem = prov::InvalidFact,
                 uint32_t WhyAux = prov::InvalidFact);
  /// LOAD consequence field(obj, fld) -> ToNode, with a remote source
  /// shipped to the slot's owner as an Edge message.  \p BaseWhy is the
  /// triggering base-variable fact (provenance aux); \p Why is the edge's
  /// justification rule (Load, or ShortcutRetLoad for cut-shortcut edges
  /// whose aux is the call-edge fact).
  void loadEdge(uint32_t Obj, FieldId Fld, uint32_t ToNode,
                uint32_t BaseWhy = prov::InvalidFact,
                prov::Rule Why = prov::Rule::Load);
  /// STORE consequence FromNode -> field(obj, fld), portal when remote.
  /// \p Why is Store, or ShortcutStore for cut-shortcut edges.
  void storeEdge(uint32_t FromNode, uint32_t Obj, FieldId Fld,
                 uint32_t BaseWhy = prov::InvalidFact,
                 prov::Rule Why = prov::Rule::Store);

  // --- Provenance hooks (zero-cost when HYBRIDPT_PROVENANCE=0) ---
  bool provOn() const; // Defined after Engine (needs E.Opts).
  /// Interns the analysis fact a node/object pair denotes.  Portal nodes
  /// intern the *remote* fact — the portal descriptor is the remote key.
  uint32_t provFact(uint32_t NodeIdx, uint32_t Obj);
  void noteEdgeWhy(uint32_t From, uint32_t To, prov::Rule Why,
                   uint32_t Aux) {
    if (provOn())
      EdgeWhy.tryEmplace(packPair(From, To),
                         (static_cast<uint64_t>(Aux) << 8) |
                             static_cast<uint64_t>(Why));
  }
  void noteCastEdgeWhy(uint32_t From, uint32_t To, uint32_t Aux,
                       prov::Rule Why = prov::Rule::Cast) {
    if (provOn())
      CastEdgeWhy.tryEmplace(packPair(From, To),
                             (static_cast<uint64_t>(Aux) << 8) |
                                 static_cast<uint64_t>(Why));
  }

  /// Cast-edge filter: a valid \p Filter admits subtypes; an invalid one
  /// marks a sanitize edge and admits only untainted allocation sites.
  bool passesCastFilter(uint32_t Obj, TypeId Filter) const;
  /// Records the step for a fresh propagation of \p Obj across an edge.
  void provEdgeStep(uint32_t From, uint32_t To, uint32_t Obj, bool IsCast);

  CtxId policyMerge(HeapId Heap, HCtxId HCtx, InvokeId Invo, CtxId Ctx);
  CtxId policyMergeStatic(InvokeId Invo, CtxId Ctx);
  HCtxId policyRecord(HeapId Heap, CtxId Ctx);
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// One thread at most drains a given partition at any time; this names the
/// partition the calling thread is draining so local sends stay direct
/// calls (preserving the worklist solver's reentrant instantiation).
thread_local Partition *CurrentPart = nullptr;

class Engine {
public:
  Engine(const Program &Prog, ContextPolicy &Policy, SolverOptions Opts,
         Condensation Cond)
      : Prog(Prog), Policy(Policy), Opts(std::move(Opts)),
        Cond(std::move(Cond)), Budget(this->Opts.TimeBudgetMs) {
    if (!this->Opts.Faults.any())
      this->Opts.Faults = FaultPlan::fromEnv();
    StepFaultArmed = this->Opts.Faults.OomAtStep != 0 ||
                     this->Opts.Faults.CancelAtStep != 0;
    SlowRuleArmed = this->Opts.Faults.SlowRule != FaultRule::None;
    Parts.reserve(this->Cond.NumSCCs);
    for (uint32_t I = 0; I < this->Cond.NumSCCs; ++I)
      Parts.push_back(std::make_unique<Partition>(*this, I));
  }

  AnalysisResult solve(unsigned Threads, SummaryStats *Stats);

  // --- Ownership ---

  uint32_t partOfMethod(MethodId M) const { return Cond.SccOf[M.index()]; }
  uint32_t partOfVar(VarId V) const {
    return Cond.SccOf[Prog.var(V).Owner.index()];
  }
  uint32_t partOfObj(uint32_t Obj) const {
    return Cond.SccOf[Prog.heap(Objs.heapOf(Obj)).InMethod.index()];
  }
  uint32_t partOfStatic(FieldId Fld) const {
    return Fld.index() % Cond.NumSCCs;
  }

  // --- Messaging ---

  void post(uint32_t Part, const Msg &M) {
    Partition &P = *Parts[Part];
    bool Schedule = false;
    {
      std::lock_guard<std::mutex> Lock(P.InboxMu);
      P.Inbox.push_back(M);
      if (P.State == PState::Idle) {
        P.State = PState::Queued;
        Schedule = true;
      }
    }
    if (Schedule)
      schedule(Part);
  }

  // --- Abort / guards ---

  void abortRun(AbortReason Why, bool Injected = false) {
    std::lock_guard<std::mutex> Lock(AbortMu);
    if (AbortSet)
      return;
    AbortSet = true;
    Reason = Why;
    FaultInjected = Injected;
    AbortFlag.store(true, std::memory_order_release);
  }

  bool aborted() const {
    return AbortFlag.load(std::memory_order_relaxed);
  }

  uint64_t totalPublishedMemory() const {
    uint64_t Sum = 0;
    for (const auto &P : Parts)
      Sum += P->MemBytesA.load(std::memory_order_relaxed);
    return Sum;
  }

  void pollStepFaults(uint64_t Step) {
    if (aborted())
      return;
    if (Opts.Faults.OomAtStep != 0 && Step >= Opts.Faults.OomAtStep)
      abortRun(AbortReason::MemoryBudget, /*Injected=*/true);
    else if (Opts.Faults.CancelAtStep != 0 &&
             Step >= Opts.Faults.CancelAtStep)
      abortRun(AbortReason::Cancelled, /*Injected=*/true);
  }

  // --- Heartbeats (any thread; amortized callers) ---

  void maybeHeartbeat() {
    if (!Opts.Trace)
      return;
    if (!HbMu.try_lock())
      return;
    std::lock_guard<std::mutex> Lock(HbMu, std::adopt_lock);
    uint64_t Step = StepCount.load(std::memory_order_relaxed);
    bool Due = Opts.HeartbeatSteps != 0 &&
               Step - LastBeatStep >= Opts.HeartbeatSteps;
    if (!Due && Opts.HeartbeatMs != 0)
      Due = BeatWatch.elapsedMs() >= static_cast<double>(Opts.HeartbeatMs);
    if (Due)
      emitHeartbeatLocked(/*Final=*/false);
  }

  const Program &Prog;
  ContextPolicy &Policy;
  /// Cut-shortcut plan of the policy (null for tuple policies).  Immutable
  /// program structure owned by the policy, so partitions may read it from
  /// any thread without taking PolicyMu.
  const CutShortcutPlan *CutPlan = Policy.cutPlan();
  SolverOptions Opts;
  Condensation Cond;
  ObjInterner Objs;
  std::mutex PolicyMu;
  Deadline Budget;
  std::atomic<uint64_t> FactCount{0};
  std::atomic<uint64_t> StepCount{0};
  bool StepFaultArmed = false;
  bool SlowRuleArmed = false;

private:
  friend class ::Partition;

  void schedule(uint32_t Part) {
    TasksInFlight.fetch_add(1, std::memory_order_acq_rel);
    if (Pool)
      Pool->submit([this, Part] { runTask(Part); });
    else
      ReadyHeap.push(Part);
  }

  void runTask(uint32_t PartId);
  void emitHeartbeatLocked(bool Final);
  telemetry::SolverCounters snapshotCounters() const;
  telemetry::SolverCounters exactCounters() const;
  AnalysisResult harvest();

  std::vector<std::unique_ptr<Partition>> Parts;
  std::atomic<bool> AbortFlag{false};
  std::mutex AbortMu;
  bool AbortSet = false;
  AbortReason Reason = AbortReason::None;
  bool FaultInjected = false;

  std::atomic<uint64_t> TasksInFlight{0};
  std::mutex DoneMu;
  std::condition_variable DoneCv;
  ThreadPool *Pool = nullptr;
  /// Inline (single-thread) mode: ready partitions by ascending id, i.e.
  /// deepest-callee-first — the true bottom-up sweep priority.  Pool mode
  /// approximates the same priority through LIFO own-deque scheduling.
  std::priority_queue<uint32_t, std::vector<uint32_t>,
                      std::greater<uint32_t>>
      ReadyHeap;

  std::mutex HbMu;
  Stopwatch BeatWatch;
  uint64_t LastBeatStep = 0;
  telemetry::SolverCounters LastBeat;
};

bool Partition::aborted() const { return E.aborted(); }

bool Partition::provOn() const { return PT_PROV_ACTIVE(E.Opts.Prov); }

Partition::Partition(Engine &E, uint32_t Id)
    : E(E), Id(Id),
      CounterSnap(
          new std::atomic<uint64_t>[telemetry::numSolverCounters()]()) {}

void Partition::pollGuards() {
  if (E.Budget.expired()) {
    E.abortRun(AbortReason::TimeBudget);
    return;
  }
  if (E.Opts.Cancel && E.Opts.Cancel->cancelled()) {
    E.abortRun(AbortReason::Cancelled);
    return;
  }
  // O(nodes) walk, so amortized to every eighth poll; published for the
  // heartbeat thread and, when a budget is set, summed across partitions.
  if ((++MemPollTick & 0x7) == 0) {
    MemBytesA.store(memoryBytes(), std::memory_order_relaxed);
    if (E.Opts.MemoryBudgetBytes != 0) {
      uint64_t Total = E.totalPublishedMemory();
      // The shared derivation arena is engine-global state; charge it
      // once here, not per partition (memoryBytes() is a lock-free
      // atomic read, safe from any draining thread).
      if (PT_PROV_ACTIVE(E.Opts.Prov))
        Total += E.Opts.Prov->memoryBytes();
      if (Total > E.Opts.MemoryBudgetBytes)
        E.abortRun(AbortReason::MemoryBudget);
    }
  }
  publishCounters();
  E.maybeHeartbeat();
}

void Partition::slowRule(FaultRule Rule) {
  if (!E.SlowRuleArmed || E.Opts.Faults.SlowRule != Rule)
    return;
  Stopwatch W;
  while (W.elapsedMs() < 0.05) {
  }
}

// --- Node interning -------------------------------------------------------

uint32_t Partition::varNode(VarId V, CtxId Ctx) {
  uint64_t Key = packPair(V.index(), Ctx.index());
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = VarCtxIndex.tryEmplace(Key, Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  return newNode({PK::VarCtx, V.index(), Ctx.index()});
}

uint32_t Partition::fieldNode(uint32_t Obj, FieldId Fld) {
  uint64_t Key = packPair(Obj, Fld.index());
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = FieldSlotIndex.tryEmplace(Key, Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  return newNode({PK::FieldSlot, Obj, Fld.index()});
}

uint32_t Partition::staticNode(FieldId Fld) {
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = StaticSlotIndex.tryEmplace(Fld.index(), Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  return newNode({PK::StaticSlot, Fld.index(), 0});
}

uint32_t Partition::throwNode(MethodId M, CtxId Ctx) {
  uint64_t Key = packPair(M.index(), Ctx.index());
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = ThrowSlotIndex.tryEmplace(Key, Idx);
  if (!Inserted)
    return *Slot;
  PT_COUNT(Counters.NodesCreated);
  return newNode({PK::ThrowSlot, M.index(), Ctx.index()});
}

uint32_t Partition::portalNode(NK Key, uint32_t A, uint32_t B,
                               uint32_t Owner) {
  FlatMap<uint32_t> *Index = nullptr;
  uint64_t K = 0;
  PK Kind = PK::PortalVar;
  switch (Key) {
  case NK::VarCtx:
    Index = &PortalVarIndex;
    K = packPair(A, B);
    Kind = PK::PortalVar;
    break;
  case NK::FieldSlot:
    Index = &PortalFieldIndex;
    K = packPair(A, B);
    Kind = PK::PortalField;
    break;
  case NK::StaticSlot:
    Index = &PortalStaticIndex;
    K = A;
    Kind = PK::PortalStatic;
    break;
  case NK::ThrowSlot:
    assert(false && "throw slots are never remote edge targets");
    break;
  }
  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  auto [Slot, Inserted] = Index->tryEmplace(K, Idx);
  if (!Inserted)
    return *Slot;
  uint32_t N = newNode({Kind, A, B});
  DestPart[N] = Owner;
  return N;
}

uint32_t Partition::internNode(NK Key, uint32_t A, uint32_t B) {
  switch (Key) {
  case NK::VarCtx:
    return varNode(VarId(A), CtxId(B));
  case NK::FieldSlot:
    return fieldNode(A, FieldId(B));
  case NK::StaticSlot:
    return staticNode(FieldId(A));
  case NK::ThrowSlot:
    return throwNode(MethodId(A), CtxId(B));
  }
  return 0; // Unreachable.
}

uint32_t Partition::internObject(HeapId Heap, HCtxId HCtx) {
  uint64_t Key = packPair(Heap.index(), HCtx.index());
  if (uint32_t *Hit = ObjCache.find(Key))
    return *Hit;
  bool Fresh = false;
  uint32_t Obj = E.Objs.intern(Heap, HCtx, Fresh);
  if (Fresh)
    PT_COUNT(Counters.ObjectsInterned);
  ObjCache.tryEmplace(Key, Obj);
  return Obj;
}

// --- Policy caches --------------------------------------------------------

HCtxId Partition::policyRecord(HeapId Heap, CtxId Ctx) {
  uint64_t Key = packPair(Heap.index(), Ctx.index());
  if (uint32_t *Hit = RecordCache.find(Key))
    return HCtxId(*Hit);
  HCtxId R;
  {
    std::lock_guard<std::mutex> Lock(E.PolicyMu);
    R = E.Policy.record(Heap, Ctx);
  }
  RecordCache.tryEmplace(Key, R.index());
  return R;
}

CtxId Partition::policyMergeStatic(InvokeId Invo, CtxId Ctx) {
  uint64_t Key = packPair(Invo.index(), Ctx.index());
  if (uint32_t *Hit = MergeStaticCache.find(Key))
    return CtxId(*Hit);
  CtxId R;
  {
    std::lock_guard<std::mutex> Lock(E.PolicyMu);
    R = E.Policy.mergeStatic(Invo, Ctx);
  }
  MergeStaticCache.tryEmplace(Key, R.index());
  return R;
}

CtxId Partition::policyMerge(HeapId Heap, HCtxId HCtx, InvokeId Invo,
                             CtxId Ctx) {
  MergeKey Key{{Heap.index(), HCtx.index(), Invo.index(), Ctx.index()}};
  auto It = MergeCache.find(Key);
  if (It != MergeCache.end())
    return CtxId(It->second);
  CtxId R;
  {
    std::lock_guard<std::mutex> Lock(E.PolicyMu);
    R = E.Policy.merge(Heap, HCtx, Invo, Ctx);
  }
  MergeCache.emplace(Key, R.index());
  return R;
}

// --- Provenance -----------------------------------------------------------

uint32_t Partition::provFact(uint32_t NodeIdx, uint32_t Obj) {
  prov::Recorder &R = *E.Opts.Prov;
  const Desc &D = Descs[NodeIdx];
  switch (D.Kind) {
  case PK::VarCtx:
  case PK::PortalVar:
    return prov::varPointsTo(R, VarId(D.A), CtxId(D.B), Obj);
  case PK::FieldSlot:
  case PK::PortalField:
    return prov::fieldPointsTo(R, D.A, FieldId(D.B), Obj);
  case PK::StaticSlot:
  case PK::PortalStatic:
    return prov::staticPointsTo(R, FieldId(D.A), Obj);
  case PK::ThrowSlot:
    return prov::throwPointsTo(R, MethodId(D.A), CtxId(D.B), Obj);
  }
  return prov::InvalidFact;
}

void Partition::provEdgeStep(uint32_t From, uint32_t To, uint32_t Obj,
                             bool IsCast) {
  FlatMap<uint64_t> &Map = IsCast ? CastEdgeWhy : EdgeWhy;
  uint64_t *Why = Map.find(packPair(From, To));
  if (!Why)
    return; // Edge predates provenance enablement; skip, stay sound.
  auto Rule = static_cast<prov::Rule>(*Why & 0xFF);
  auto Aux = static_cast<uint32_t>(*Why >> 8);
  E.Opts.Prov->step(provFact(To, Obj), Rule, provFact(From, Obj), Aux);
}

// --- Cross-partition routing ----------------------------------------------

void Partition::reach(MethodId M, CtxId Ctx, prov::Rule Why,
                      uint32_t WhyPrem) {
  uint32_t Owner = E.partOfMethod(M);
  if (Owner == Id) {
    ensureReachable(M, Ctx, Why, WhyPrem);
    return;
  }
  if (!SentReach.insert(packPair(M.index(), Ctx.index())))
    return;
  PT_COUNT(Counters.CrossMsgs);
  Msg Message;
  Message.Kind = MsgKind::Reach;
  Message.A = M.index();
  Message.B = Ctx.index();
  if (provOn()) {
    Message.WhyRule = static_cast<uint8_t>(Why);
    Message.WhyPrem = WhyPrem;
  }
  E.post(Owner, Message);
}

void Partition::factToVar(VarId V, CtxId Ctx, uint32_t Obj, prov::Rule Why,
                          uint32_t WhyPrem, uint32_t WhyAux) {
  uint32_t Owner = E.partOfVar(V);
  if (Owner == Id) {
    uint32_t N = varNode(V, Ctx);
    if (addFact(N, Obj) && provOn())
      E.Opts.Prov->step(provFact(N, Obj), Why, WhyPrem, WhyAux);
    return;
  }
  PT_COUNT(Counters.CrossMsgs);
  Msg Message;
  Message.Kind = MsgKind::Fact;
  Message.NKey = NK::VarCtx;
  Message.A = V.index();
  Message.B = Ctx.index();
  Message.Obj = Obj;
  if (provOn()) {
    Message.WhyRule = static_cast<uint8_t>(Why);
    Message.WhyPrem = WhyPrem;
    Message.WhyAux = WhyAux;
  }
  E.post(Owner, Message);
}

void Partition::loadEdge(uint32_t Obj, FieldId Fld, uint32_t ToNode,
                         uint32_t BaseWhy, prov::Rule Why) {
  uint32_t Owner = E.partOfObj(Obj);
  if (Owner == Id) {
    uint32_t Src = fieldNode(Obj, Fld);
    noteEdgeWhy(Src, ToNode, Why, BaseWhy);
    addEdge(Src, ToNode);
    return;
  }
  // The edge's source (the field slot) lives elsewhere: ship the edge to
  // the owner, naming our local target so it can intern a portal back.
  const Desc &D = Descs[ToNode];
  PT_COUNT(Counters.CrossMsgs);
  Msg Message;
  Message.Kind = MsgKind::Edge;
  Message.NKey = NK::FieldSlot;
  Message.A = Obj;
  Message.B = Fld.index();
  Message.RefPart = Id;
  Message.RefKey = NK::VarCtx;
  Message.RefA = D.A;
  Message.RefB = D.B;
  if (provOn()) {
    Message.WhyRule = static_cast<uint8_t>(Why);
    Message.WhyAux = BaseWhy;
  }
  E.post(Owner, Message);
}

void Partition::storeEdge(uint32_t FromNode, uint32_t Obj, FieldId Fld,
                          uint32_t BaseWhy, prov::Rule Why) {
  uint32_t Owner = E.partOfObj(Obj);
  uint32_t To = Owner == Id ? fieldNode(Obj, Fld)
                            : portalNode(NK::FieldSlot, Obj, Fld.index(),
                                         Owner);
  noteEdgeWhy(FromNode, To, Why, BaseWhy);
  addEdge(FromNode, To);
}

// --- Facts and edges ------------------------------------------------------

bool Partition::addFact(uint32_t NodeIdx, uint32_t Obj) {
  if (aborted())
    return false;
  bool Portal = isPortal(Descs[NodeIdx].Kind);
  // Portal inserts are routing state, not analysis facts: they must not
  // count toward MaxFacts or the fact counters, or the summary engine
  // would hit budgets earlier than the worklist engine on the same cell.
  if (!Portal && E.Opts.MaxFacts != 0 &&
      E.FactCount.load(std::memory_order_relaxed) >= E.Opts.MaxFacts) {
    E.abortRun(AbortReason::FactBudget);
    return false;
  }
  Node &N = Nodes[NodeIdx];
  if (!N.Set.insert(Obj)) {
    if (!Portal)
      PT_COUNT(Counters.FactDedupHits);
    return false;
  }
  if (!Portal) {
    PT_COUNT(Counters.FactsInserted);
    E.FactCount.fetch_add(1, std::memory_order_relaxed);
  }
  if (!N.Queued) {
    N.Queued = true;
    Worklist.push_back(NodeIdx);
  }
  return true;
}

void Partition::addEdge(uint32_t From, uint32_t To) {
  if (From == To)
    return;
  if (!EdgeDedup.insert(packPair(From, To))) {
    PT_COUNT(Counters.EdgeDedupHits);
    return;
  }
  PT_COUNT(Counters.EdgesAdded);
  Nodes[From].Edges.push_back(To);
  uint32_t Count = Nodes[From].Set.size();
  PT_COUNT_ADD(Counters.FactsReplayed, Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Obj = Nodes[From].Set.at(I);
    if (addFact(To, Obj) && provOn())
      provEdgeStep(From, To, Obj, /*IsCast=*/false);
  }
}

bool Partition::passesCastFilter(uint32_t Obj, TypeId Filter) const {
  const HeapInfo &H = E.Prog.heap(E.Objs.heapOf(Obj));
  if (!Filter.isValid())
    return H.TaintTag == 0; // Sanitize edge (SanitizeInstr).
  return E.Prog.isSubtype(H.Type, Filter);
}

void Partition::addCastEdge(uint32_t From, uint32_t To, TypeId Filter) {
  PT_COUNT(Counters.EdgesAdded);
  Nodes[From].CastEdges.push_back({To, Filter});
  uint32_t Count = Nodes[From].Set.size();
  PT_COUNT_ADD(Counters.FactsReplayed, Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Obj = Nodes[From].Set.at(I);
    PT_COUNT(Counters.RuleCast);
    if (passesCastFilter(Obj, Filter))
      if (addFact(To, Obj) && provOn())
        provEdgeStep(From, To, Obj, /*IsCast=*/true);
  }
}

// --- Reachability (the summary body) --------------------------------------

void Partition::ensureReachable(MethodId M, CtxId Ctx, prov::Rule Why,
                                uint32_t WhyPrem) {
  if (aborted())
    return;
  if (!ReachableSet.insert(packPair(M.index(), Ctx.index()))) {
    // Memoized summary: identical abstract input (method, context), reuse.
    PT_COUNT(Counters.SummaryHits);
    return;
  }
  PT_COUNT(Counters.SummaryMisses);
  PT_COUNT(Counters.MethodsInstantiated);
  ReachableList.push_back({M, Ctx});

  uint32_t RFact = prov::InvalidFact;
  if (provOn()) {
    RFact = prov::reachableFact(*E.Opts.Prov, M, Ctx);
    E.Opts.Prov->step(RFact, Why, WhyPrem);
  }

  const Program &Prog = E.Prog;
  const MethodInfo &Body = Prog.method(M);

  for (const AllocInstr &A : Body.Allocs) {
    PT_COUNT(Counters.RuleAlloc);
    slowRule(FaultRule::Alloc);
    HCtxId HCtx = policyRecord(A.Heap, Ctx);
    uint32_t Obj = internObject(A.Heap, HCtx);
    uint32_t VN = varNode(A.Var, Ctx);
    if (addFact(VN, Obj) && provOn())
      E.Opts.Prov->step(provFact(VN, Obj), prov::Rule::Alloc, RFact);
  }

  for (const MoveInstr &Mv : Body.Moves) {
    PT_COUNT(Counters.RuleMove);
    slowRule(FaultRule::Move);
    uint32_t From = varNode(Mv.From, Ctx);
    uint32_t To = varNode(Mv.To, Ctx);
    noteEdgeWhy(From, To, prov::Rule::Move, RFact);
    addEdge(From, To);
  }

  for (const CastInstr &C : Body.Casts) {
    slowRule(FaultRule::Cast);
    uint32_t From = varNode(C.From, Ctx);
    uint32_t To = varNode(C.To, Ctx);
    noteCastEdgeWhy(From, To, RFact);
    addCastEdge(From, To, C.Target);
  }

  // Sanitize edges: intra-method, so both endpoints live in this
  // partition (invalid filter = taint barrier; see passesCastFilter).
  for (const SanitizeInstr &S : Body.Sanitizes) {
    uint32_t From = varNode(S.From, Ctx);
    uint32_t To = varNode(S.To, Ctx);
    noteCastEdgeWhy(From, To, RFact, prov::Rule::Sanitize);
    addCastEdge(From, To, TypeId::invalid());
  }

  for (const LoadInstr &L : Body.Loads) {
    slowRule(FaultRule::Load);
    uint32_t Base = varNode(L.Base, Ctx);
    uint32_t To = varNode(L.To, Ctx);
    Nodes[Base].Loads.push_back({L.Fld, To});
    uint32_t Count = Nodes[Base].Set.size();
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t Obj = Nodes[Base].Set.at(I);
      PT_COUNT(Counters.RuleLoad);
      loadEdge(Obj, L.Fld, To,
               provOn() ? provFact(Base, Obj) : prov::InvalidFact);
    }
  }
  for (uint32_t SI = 0; SI < Body.Stores.size(); ++SI) {
    const StoreInstr &S = Body.Stores[SI];
    if (E.CutPlan && E.CutPlan->isStoreCut(M, SI))
      continue; // Covered store: replaced by per-call-edge shortcut edges.
    slowRule(FaultRule::Store);
    uint32_t Base = varNode(S.Base, Ctx);
    uint32_t From = varNode(S.From, Ctx);
    Nodes[Base].Stores.push_back({S.Fld, From});
    uint32_t Count = Nodes[Base].Set.size();
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t Obj = Nodes[Base].Set.at(I);
      PT_COUNT(Counters.RuleStore);
      storeEdge(From, Obj, S.Fld,
                provOn() ? provFact(Base, Obj) : prov::InvalidFact);
    }
  }

  for (const SLoadInstr &L : Body.SLoads) {
    PT_COUNT(Counters.RuleStaticLoad);
    slowRule(FaultRule::SLoad);
    uint32_t Owner = E.partOfStatic(L.Fld);
    uint32_t To = varNode(L.To, Ctx);
    if (Owner == Id) {
      uint32_t Src = staticNode(L.Fld);
      noteEdgeWhy(Src, To, prov::Rule::StaticLoad, RFact);
      addEdge(Src, To);
    } else {
      PT_COUNT(Counters.CrossMsgs);
      Msg Message;
      Message.Kind = MsgKind::Edge;
      Message.NKey = NK::StaticSlot;
      Message.A = L.Fld.index();
      Message.RefPart = Id;
      Message.RefKey = NK::VarCtx;
      Message.RefA = L.To.index();
      Message.RefB = Ctx.index();
      if (provOn()) {
        Message.WhyRule = static_cast<uint8_t>(prov::Rule::StaticLoad);
        Message.WhyAux = RFact;
      }
      E.post(Owner, Message);
    }
  }
  for (const SStoreInstr &S : Body.SStores) {
    PT_COUNT(Counters.RuleStaticStore);
    slowRule(FaultRule::SStore);
    uint32_t Owner = E.partOfStatic(S.Fld);
    uint32_t To = Owner == Id
                      ? staticNode(S.Fld)
                      : portalNode(NK::StaticSlot, S.Fld.index(), 0, Owner);
    uint32_t From = varNode(S.From, Ctx);
    noteEdgeWhy(From, To, prov::Rule::StaticStore, RFact);
    addEdge(From, To);
  }

  for (const ThrowInstr &T : Body.Throws) {
    uint32_t VNode = varNode(T.V, Ctx);
    Nodes[VNode].ThrowSubs.push_back(packPair(M.index(), Ctx.index()));
    uint32_t Count = Nodes[VNode].Set.size();
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t Obj = Nodes[VNode].Set.at(I);
      routeThrow(Obj, M, Ctx,
                 provOn() ? provFact(VNode, Obj) : prov::InvalidFact);
    }
  }

  for (InvokeId Inv : Body.Invokes) {
    const InvokeInfo &Call = Prog.invoke(Inv);
    if (Call.IsStatic) {
      PT_COUNT(Counters.RuleSCall);
      slowRule(FaultRule::SCall);
      if (E.Opts.Faults.DropSCall)
        continue; // Injected bug (support/FaultPlan.h).
      CtxId CalleeCtx = policyMergeStatic(Inv, Ctx);
      wireCall(Inv, Ctx, Call.Target, CalleeCtx, prov::Rule::SCall, RFact);
    } else {
      uint32_t Base = varNode(Call.Base, Ctx);
      Nodes[Base].Dispatches.push_back({Inv, Ctx});
      uint32_t Count = Nodes[Base].Set.size();
      for (uint32_t I = 0; I < Count; ++I)
        dispatch({Inv, Ctx}, Nodes[Base].Set.at(I));
    }
  }
}

// --- Exceptions -----------------------------------------------------------

void Partition::routeThrow(uint32_t Obj, MethodId M, CtxId Ctx,
                           uint32_t WhyPrem, uint32_t WhyAux) {
  if (checkBudget())
    return;
  PT_COUNT(Counters.RuleThrow);
  slowRule(FaultRule::Throw);
  const Program &Prog = E.Prog;
  TypeId ObjType = Prog.heap(E.Objs.heapOf(Obj)).Type;
  const MethodInfo &Body = Prog.method(M);
  // An aux premise (the call edge) means this object escalated out of a
  // callee; otherwise it came from a local THROW.
  bool Escalating = WhyAux != prov::InvalidFact;
  bool Caught = false;
  for (const HandlerInfo &H : Body.Handlers) {
    if (Prog.isSubtype(ObjType, H.CatchType)) {
      uint32_t HN = varNode(H.Var, Ctx);
      if (addFact(HN, Obj) && provOn())
        E.Opts.Prov->step(provFact(HN, Obj),
                          Escalating ? prov::Rule::CatchEscalate
                                     : prov::Rule::CatchBind,
                          WhyPrem, WhyAux);
      Caught = true;
    }
  }
  if (!Caught) {
    uint32_t TN = throwNode(M, Ctx);
    if (addFact(TN, Obj) && provOn())
      E.Opts.Prov->step(provFact(TN, Obj),
                        Escalating ? prov::Rule::ThrowEscalate
                                   : prov::Rule::ThrowRaise,
                        WhyPrem, WhyAux);
  }
}

void Partition::addThrowLink(uint32_t ThrowNodeIdx, uint32_t CallerPart,
                             uint32_t CallerM, uint32_t CallerCtx,
                             uint32_t WhyAux) {
  // Exact dedup by linear scan: links per throw slot are few, and a false
  // hash-dedup hit here would silently drop an escalation path.
  std::vector<TLink> &Links = Nodes[ThrowNodeIdx].ThrowLinks;
  for (const TLink &L : Links)
    if (L.Part == CallerPart && L.M == CallerM && L.Ctx == CallerCtx)
      return;
  Links.push_back({CallerPart, CallerM, CallerCtx, WhyAux});
  uint32_t Count = Nodes[ThrowNodeIdx].Set.size();
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Obj = Nodes[ThrowNodeIdx].Set.at(I);
    fireThrowLink({CallerPart, CallerM, CallerCtx, WhyAux}, Obj,
                  provOn() ? provFact(ThrowNodeIdx, Obj)
                           : prov::InvalidFact);
  }
}

void Partition::fireThrowLink(const TLink &L, uint32_t Obj,
                              uint32_t WhyPrem) {
  if (L.Part == Id) {
    routeThrow(Obj, MethodId(L.M), CtxId(L.Ctx), WhyPrem, L.WhyAux);
    return;
  }
  PT_COUNT(Counters.CrossMsgs);
  Msg Message;
  Message.Kind = MsgKind::RouteThrow;
  Message.A = L.M;
  Message.B = L.Ctx;
  Message.Obj = Obj;
  if (provOn()) {
    Message.WhyPrem = WhyPrem;
    Message.WhyAux = L.WhyAux;
  }
  E.post(L.Part, Message);
}

// --- Calls ----------------------------------------------------------------

void Partition::dispatch(const DispatchSub &Sub, uint32_t Obj) {
  if (checkBudget())
    return;
  PT_COUNT(Counters.RuleVCall);
  slowRule(FaultRule::VCall);
  const Program &Prog = E.Prog;
  const InvokeInfo &Call = Prog.invoke(Sub.Invo);
  HeapId Heap = E.Objs.heapOf(Obj);
  HCtxId HCtx = E.Objs.hctxOf(Obj);
  MethodId Callee = Prog.lookup(Prog.heap(Heap).Type, Call.Sig);
  if (!Callee.isValid())
    return;
  CtxId CalleeCtx = policyMerge(Heap, HCtx, Sub.Invo, Sub.CallerCtx);
  const MethodInfo &CalleeInfo = Prog.method(Callee);
  // Provenance: intern (not record) the receiver fact and the call-edge
  // fact here; the call edge's own step lands in wireCall on first insert.
  uint32_t BaseFact = prov::InvalidFact;
  uint32_t CEFact = prov::InvalidFact;
  if (provOn()) {
    BaseFact =
        prov::varPointsTo(*E.Opts.Prov, Call.Base, Sub.CallerCtx, Obj);
    CEFact = prov::callEdgeFact(*E.Opts.Prov, Sub.Invo, Sub.CallerCtx,
                                Callee, CalleeCtx);
  }
  reach(Callee, CalleeCtx, prov::Rule::ReachCall, CEFact);
  factToVar(CalleeInfo.This, CalleeCtx, Obj, prov::Rule::ThisBind, BaseFact,
            CEFact);
  wireCall(Sub.Invo, Sub.CallerCtx, Callee, CalleeCtx, prov::Rule::VCall,
           BaseFact);
  // Receiver-dependent cut shortcuts.  These must be wired here, per
  // (invoke, receiver object): wireCall dedups on the context-free call
  // edge, which under contextless cut policies collapses all receivers of
  // an invoke into one edge.  storeEdge/loadEdge and addEdge dedup, so the
  // occasional dispatch re-fire for the same (Sub, Obj) stays idempotent.
  if (const CutShortcutPlan *CP = E.CutPlan) {
    const CutShortcutPlan::MethodPlan &MP = CP->method(Callee);
    for (const CutShortcutPlan::StoreCut &SC : MP.StoreCuts) {
      if (SC.FormalIdx >= Call.Actuals.size())
        continue;
      uint32_t FromN = varNode(Call.Actuals[SC.FormalIdx], Sub.CallerCtx);
      storeEdge(FromN, Obj, SC.Fld, CEFact, prov::Rule::ShortcutStore);
    }
    if (MP.RetCut && Call.RetTo.isValid()) {
      uint32_t RetN = varNode(Call.RetTo, Sub.CallerCtx);
      for (FieldId F : MP.RetLoads)
        loadEdge(Obj, F, RetN, CEFact, prov::Rule::ShortcutRetLoad);
    }
  }
}

bool Partition::insertCallEdge(const CallGraphEdge &Edge) {
  uint32_t Words[4] = {Edge.Invo.index(), Edge.CallerCtx.index(),
                       Edge.Callee.index(), Edge.CalleeCtx.index()};
  uint64_t H = hashWords(Words, 4);
  uint32_t NewIdx = static_cast<uint32_t>(CallEdges.size());
  auto [Head, Fresh] = CallEdgeHead.tryEmplace(H, NewIdx);
  uint32_t ChainNext = UINT32_MAX;
  if (!Fresh) {
    for (uint32_t I = *Head; I != UINT32_MAX; I = CallEdgeNext[I]) {
      const CallGraphEdge &X = CallEdges[I];
      if (X.Invo == Edge.Invo && X.CallerCtx == Edge.CallerCtx &&
          X.Callee == Edge.Callee && X.CalleeCtx == Edge.CalleeCtx)
        return false;
    }
    ChainNext = *Head;
    *Head = NewIdx;
  }
  PT_COUNT(Counters.CallEdgesInserted);
  CallEdges.push_back(Edge);
  CallEdgeNext.push_back(ChainNext);
  return true;
}

void Partition::wireCall(InvokeId Invo, CtxId CallerCtx, MethodId Callee,
                         CtxId CalleeCtx, prov::Rule CallWhy,
                         uint32_t CallPrem) {
  // The call edge is deduped in the *caller's* partition — every wireCall
  // for an invoke runs where the invoke's method lives, so the dedup stays
  // partition-local and exact.
  if (!insertCallEdge({Invo, CallerCtx, Callee, CalleeCtx}))
    return;
  // A new (call site, callee summary) link: the value-contexts
  // "instantiate summary at call site" event.
  PT_COUNT(Counters.SummaryInstantiations);

  uint32_t CEFact = prov::InvalidFact;
  if (provOn()) {
    CEFact =
        prov::callEdgeFact(*E.Opts.Prov, Invo, CallerCtx, Callee, CalleeCtx);
    E.Opts.Prov->step(CEFact, CallWhy, CallPrem);
  }

  reach(Callee, CalleeCtx, prov::Rule::ReachCall, CEFact);

  const Program &Prog = E.Prog;
  const InvokeInfo &Call = Prog.invoke(Invo);
  const MethodInfo &CalleeInfo = Prog.method(Callee);
  uint32_t CalleePart = E.partOfMethod(Callee);

  size_t NumArgs = std::min(Call.Actuals.size(), CalleeInfo.Formals.size());
  for (size_t I = 0; I < NumArgs; ++I) {
    uint32_t From = varNode(Call.Actuals[I], CallerCtx);
    uint32_t To =
        CalleePart == Id
            ? varNode(CalleeInfo.Formals[I], CalleeCtx)
            : portalNode(NK::VarCtx, CalleeInfo.Formals[I].index(),
                         CalleeCtx.index(), CalleePart);
    noteEdgeWhy(From, To, prov::Rule::ParamBind, CEFact);
    addEdge(From, To);
  }

  // Ret-cut callees drop the generic return edge; per-call-edge shortcut
  // edges (below) carry the same values directly to the caller.
  const CutShortcutPlan::MethodPlan *MP =
      E.CutPlan ? &E.CutPlan->method(Callee) : nullptr;
  bool RetCut = MP && MP->RetCut;
  if (Call.RetTo.isValid() && CalleeInfo.Return.isValid() && !RetCut) {
    if (CalleePart == Id) {
      uint32_t From = varNode(CalleeInfo.Return, CalleeCtx);
      uint32_t To = varNode(Call.RetTo, CallerCtx);
      noteEdgeWhy(From, To, prov::Rule::ReturnBind, CEFact);
      addEdge(From, To);
    } else {
      // Return edges flow callee -> caller: the source lives in the
      // callee's partition, so the edge is shipped there.
      PT_COUNT(Counters.CrossMsgs);
      Msg Message;
      Message.Kind = MsgKind::Edge;
      Message.NKey = NK::VarCtx;
      Message.A = CalleeInfo.Return.index();
      Message.B = CalleeCtx.index();
      Message.RefPart = Id;
      Message.RefKey = NK::VarCtx;
      Message.RefA = Call.RetTo.index();
      Message.RefB = CallerCtx.index();
      if (provOn()) {
        Message.WhyRule = static_cast<uint8_t>(prov::Rule::ReturnBind);
        Message.WhyAux = CEFact;
      }
      E.post(CalleePart, Message);
    }
  }

  if (RetCut && Call.RetTo.isValid()) {
    // Receiver-independent shortcut edges: both endpoints are caller-local
    // variables, so no cross-partition traffic regardless of the callee's
    // partition.
    uint32_t RetN = varNode(Call.RetTo, CallerCtx);
    for (uint32_t Pos : MP->RetArgs) {
      if (Pos >= Call.Actuals.size())
        continue;
      uint32_t FromN = varNode(Call.Actuals[Pos], CallerCtx);
      noteEdgeWhy(FromN, RetN, prov::Rule::ShortcutRetArg, CEFact);
      addEdge(FromN, RetN);
    }
    for (HeapId H : MP->RetAllocs) {
      uint32_t O = internObject(H, policyRecord(H, CalleeCtx));
      if (addFact(RetN, O) && provOn())
        E.Opts.Prov->step(provFact(RetN, O), prov::Rule::ShortcutRetAlloc,
                          CEFact);
    }
  }

  if (CalleePart == Id) {
    addThrowLink(throwNode(Callee, CalleeCtx), Id, Call.InMethod.index(),
                 CallerCtx.index(), CEFact);
  } else {
    PT_COUNT(Counters.CrossMsgs);
    Msg Message;
    Message.Kind = MsgKind::ThrowLink;
    Message.A = Callee.index();
    Message.B = CalleeCtx.index();
    Message.RefPart = Id;
    Message.RefA = Call.InMethod.index();
    Message.RefB = CallerCtx.index();
    if (provOn())
      Message.WhyAux = CEFact;
    E.post(CalleePart, Message);
  }
}

// --- Delta propagation ----------------------------------------------------

void Partition::processDelta(uint32_t NodeIdx) {
  if (isPortal(Descs[NodeIdx].Kind)) {
    // Portal: forward each newly arriving object to the owner partition.
    // The portal's set already deduped repeats, so each (target, object)
    // pair crosses the boundary at most once per portal.
    NK Key = Descs[NodeIdx].Kind == PK::PortalVar      ? NK::VarCtx
             : Descs[NodeIdx].Kind == PK::PortalField ? NK::FieldSlot
                                                      : NK::StaticSlot;
    uint32_t Owner = DestPart[NodeIdx];
    while (true) {
      if (aborted())
        return;
      Node &N = Nodes[NodeIdx];
      if (N.Scanned >= N.Set.size())
        break;
      uint32_t Obj = N.Set.at(N.Scanned++);
      PT_COUNT(Counters.CrossMsgs);
      Msg Message;
      Message.Kind = MsgKind::Fact;
      Message.NKey = Key;
      Message.A = Descs[NodeIdx].A;
      Message.B = Descs[NodeIdx].B;
      Message.Obj = Obj;
      E.post(Owner, Message);
    }
    return;
  }

  // Real node: identical structure to Solver::processDelta — index loops
  // re-reading Nodes each step, since reentrant growth may reallocate.
  while (true) {
    if (aborted())
      return;
    {
      Node &N = Nodes[NodeIdx];
      if (N.Scanned >= N.Set.size())
        break;
    }
    uint32_t Obj = Nodes[NodeIdx].Set.at(Nodes[NodeIdx].Scanned++);

    for (size_t I = 0; I < Nodes[NodeIdx].Dispatches.size(); ++I) {
      DispatchSub Sub = Nodes[NodeIdx].Dispatches[I];
      dispatch(Sub, Obj);
    }
    uint32_t SelfFact =
        provOn() ? provFact(NodeIdx, Obj) : prov::InvalidFact;
    for (size_t I = 0; I < Nodes[NodeIdx].ThrowSubs.size(); ++I) {
      uint64_t Frame = Nodes[NodeIdx].ThrowSubs[I];
      routeThrow(Obj, MethodId(unpackHi(Frame)), CtxId(unpackLo(Frame)),
                 SelfFact);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].ThrowLinks.size(); ++I) {
      TLink L = Nodes[NodeIdx].ThrowLinks[I];
      fireThrowLink(L, Obj, SelfFact);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Loads.size(); ++I) {
      LoadSub Sub = Nodes[NodeIdx].Loads[I];
      PT_COUNT(Counters.RuleLoad);
      slowRule(FaultRule::Load);
      loadEdge(Obj, Sub.Fld, Sub.ToNode, SelfFact);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Stores.size(); ++I) {
      StoreSub Sub = Nodes[NodeIdx].Stores[I];
      PT_COUNT(Counters.RuleStore);
      slowRule(FaultRule::Store);
      storeEdge(Sub.FromNode, Obj, Sub.Fld, SelfFact);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].Edges.size(); ++I) {
      uint32_t To = Nodes[NodeIdx].Edges[I];
      if (addFact(To, Obj) && provOn())
        provEdgeStep(NodeIdx, To, Obj, /*IsCast=*/false);
    }
    for (size_t I = 0; I < Nodes[NodeIdx].CastEdges.size(); ++I) {
      CastEdge Ce = Nodes[NodeIdx].CastEdges[I];
      PT_COUNT(Counters.RuleCast);
      slowRule(FaultRule::Cast);
      if (passesCastFilter(Obj, Ce.Filter))
        if (addFact(Ce.ToNode, Obj) && provOn())
          provEdgeStep(NodeIdx, Ce.ToNode, Obj, /*IsCast=*/true);
    }
  }
}

void Partition::drainWorklist() {
  while (!Worklist.empty()) {
    if (aborted() || checkBudget())
      return;
    uint64_t Step = E.StepCount.fetch_add(1, std::memory_order_relaxed) + 1;
    if (E.StepFaultArmed) {
      E.pollStepFaults(Step);
      if (aborted())
        return;
    }
    uint32_t NodeIdx = Worklist.front();
    Worklist.pop_front();
    PT_COUNT(Counters.WorklistSteps);
    Nodes[NodeIdx].Queued = false;
    processDelta(NodeIdx);
  }
}

void Partition::apply(const Msg &M) {
  if (aborted())
    return;
  switch (M.Kind) {
  case MsgKind::Reach:
    ensureReachable(MethodId(M.A), CtxId(M.B),
                    M.WhyRule == WhyNone
                        ? prov::Rule::Entry
                        : static_cast<prov::Rule>(M.WhyRule),
                    M.WhyPrem);
    break;
  case MsgKind::Fact: {
    uint32_t N = internNode(M.NKey, M.A, M.B);
    bool Fresh = addFact(N, M.Obj);
    // WhyNone marks a portal-forwarded fact: the sender already recorded
    // its step at portal-insert time (portal desc == this fact's key).
    if (Fresh && provOn() && M.WhyRule != WhyNone)
      E.Opts.Prov->step(provFact(N, M.Obj),
                        static_cast<prov::Rule>(M.WhyRule), M.WhyPrem,
                        M.WhyAux);
    break;
  }
  case MsgKind::Edge: {
    uint32_t Src = internNode(M.NKey, M.A, M.B);
    uint32_t Dst = M.RefPart == Id
                       ? internNode(M.RefKey, M.RefA, M.RefB)
                       : portalNode(M.RefKey, M.RefA, M.RefB, M.RefPart);
    if (M.WhyRule != WhyNone)
      noteEdgeWhy(Src, Dst, static_cast<prov::Rule>(M.WhyRule), M.WhyAux);
    addEdge(Src, Dst);
    break;
  }
  case MsgKind::ThrowLink:
    addThrowLink(throwNode(MethodId(M.A), CtxId(M.B)), M.RefPart, M.RefA,
                 M.RefB, M.WhyAux);
    break;
  case MsgKind::RouteThrow:
    routeThrow(M.Obj, MethodId(M.A), CtxId(M.B), M.WhyPrem, M.WhyAux);
    break;
  }
}

size_t Partition::memoryBytes() const {
  size_t Bytes = Nodes.capacity() * sizeof(Node) +
                 Descs.capacity() * sizeof(Desc) +
                 DestPart.capacity() * sizeof(uint32_t);
  for (const Node &N : Nodes) {
    Bytes += N.Set.memoryBytes();
    Bytes += N.Edges.capacity() * sizeof(uint32_t);
    Bytes += N.CastEdges.capacity() * sizeof(CastEdge);
    Bytes += N.Loads.capacity() * sizeof(LoadSub);
    Bytes += N.Stores.capacity() * sizeof(StoreSub);
    Bytes += N.Dispatches.capacity() * sizeof(DispatchSub);
    Bytes += N.ThrowSubs.capacity() * sizeof(uint64_t);
    Bytes += N.ThrowLinks.capacity() * sizeof(TLink);
  }
  Bytes += VarCtxIndex.memoryBytes() + FieldSlotIndex.memoryBytes() +
           StaticSlotIndex.memoryBytes() + ThrowSlotIndex.memoryBytes() +
           PortalVarIndex.memoryBytes() + PortalFieldIndex.memoryBytes() +
           PortalStaticIndex.memoryBytes() + EdgeDedup.memoryBytes() +
           EdgeWhy.memoryBytes() + CastEdgeWhy.memoryBytes() +
           ReachableSet.memoryBytes() + SentReach.memoryBytes() +
           CallEdgeHead.memoryBytes() + RecordCache.memoryBytes() +
           MergeStaticCache.memoryBytes() + ObjCache.memoryBytes();
  Bytes += ReachableList.capacity() * sizeof(std::pair<MethodId, CtxId>);
  Bytes += CallEdges.capacity() * sizeof(CallGraphEdge) +
           CallEdgeNext.capacity() * sizeof(uint32_t);
  Bytes += MergeCache.size() *
           (sizeof(std::pair<MergeKey, uint32_t>) + 2 * sizeof(void *));
  return Bytes;
}

// --- Engine scheduling ----------------------------------------------------

void Engine::runTask(uint32_t PartId) {
  Partition &P = *Parts[PartId];
  {
    std::lock_guard<std::mutex> Lock(P.InboxMu);
    P.State = PState::Running;
  }
  Partition *Prev = CurrentPart;
  CurrentPart = &P;
  ++P.Activations;
  PT_COUNT(P.Counters.SccTasks);

  std::optional<trace::TraceRecorder::Span> Span;
  if (Opts.Trace) {
    char Name[32], Args[96];
    std::snprintf(Name, sizeof(Name), "scc:%u", PartId);
    std::snprintf(Args, sizeof(Args),
                  "{\"scc\":%u,\"depth\":%u,\"methods\":%zu}", PartId,
                  Cond.Depth[PartId], Cond.Members[PartId].size());
    Span.emplace(Opts.Trace, Name, "scc", Args);
  }

  Stopwatch Busy;
  std::vector<Msg> Batch;
  while (true) {
    {
      std::lock_guard<std::mutex> Lock(P.InboxMu);
      Batch.swap(P.Inbox);
    }
    for (const Msg &M : Batch)
      P.apply(M);
    Batch.clear();
    P.drainWorklist();
    std::lock_guard<std::mutex> Lock(P.InboxMu);
    if (P.Inbox.empty()) {
      // Going idle is decided under the inbox lock, so a concurrent post
      // either lands in the inbox we just saw non-empty (loop again) or
      // observes Idle and schedules a fresh task — no lost wakeups.
      P.State = PState::Idle;
      break;
    }
  }
  P.BusyUs.fetch_add(static_cast<uint64_t>(Busy.elapsedMs() * 1000.0),
                     std::memory_order_relaxed);
  CurrentPart = Prev;
  Span.reset();

  if (TasksInFlight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> Lock(DoneMu);
    DoneCv.notify_all();
  }
}

telemetry::SolverCounters Engine::snapshotCounters() const {
  telemetry::SolverCounters Sum;
  for (const auto &P : Parts) {
    size_t I = 0;
#define PT_ACC(Field, Name)                                                    \
  Sum.Field += P->CounterSnap[I++].load(std::memory_order_relaxed);
    PT_SOLVER_COUNTERS(PT_ACC)
#undef PT_ACC
  }
  return Sum;
}

telemetry::SolverCounters Engine::exactCounters() const {
  telemetry::SolverCounters Sum;
  for (const auto &P : Parts) {
#define PT_SUMF(Field, Name) Sum.Field += P->Counters.Field;
    PT_SOLVER_COUNTERS(PT_SUMF)
#undef PT_SUMF
  }
  return Sum;
}

void Engine::emitHeartbeatLocked(bool Final) {
  trace::Heartbeat HB;
  HB.Label = Opts.TraceLabel;
  HB.Step = StepCount.load(std::memory_order_relaxed);
  HB.WorklistDepth = TasksInFlight.load(std::memory_order_relaxed);
  HB.Facts = FactCount.load(std::memory_order_relaxed);
  HB.Objects = Objs.size();
  HB.Final = Final;
  if (Final) {
    // The sweep has quiesced: exact values are race-free now.
    uint64_t Nodes = 0, Mem = Objs.memoryBytes();
    if (PT_PROV_ACTIVE(Opts.Prov))
      Mem += Opts.Prov->memoryBytes();
    for (const auto &P : Parts) {
      Nodes += P->Nodes.size();
      Mem += P->memoryBytes();
    }
    HB.Nodes = Nodes;
    HB.MemoryBytes = Mem;
    HB.Totals = exactCounters();
    if (AbortFlag.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> Lock(AbortMu);
      HB.Abort = abortReasonName(Reason);
    }
  } else {
    // Live sweep: read only the published atomic snapshots (stale by at
    // most one guard-poll interval, but race-free).
    uint64_t Nodes = 0, Mem = 0;
    if (PT_PROV_ACTIVE(Opts.Prov))
      Mem += Opts.Prov->memoryBytes();
    for (const auto &P : Parts) {
      Nodes += P->NodesA.load(std::memory_order_relaxed);
      Mem += P->MemBytesA.load(std::memory_order_relaxed);
    }
    HB.Nodes = Nodes;
    HB.MemoryBytes = Mem;
    HB.Totals = snapshotCounters();
  }
  HB.Deltas = HB.Totals.since(LastBeat);
  LastBeat = HB.Totals;
  LastBeatStep = HB.Step;
  BeatWatch.restart();
  Opts.Trace->heartbeat(std::move(HB));
}

AnalysisResult Engine::harvest() {
  AnalysisResult Result(Prog, Policy);
  Result.Aborted = AbortFlag.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> Lock(AbortMu);
    Result.Reason = Reason;
    Result.FaultInjected = FaultInjected;
  }
  Result.Counters = exactCounters();
  Result.PeakBytes = Objs.memoryBytes();
  if (PT_PROV_ACTIVE(Opts.Prov))
    Result.PeakBytes += Opts.Prov->memoryBytes();
  Objs.exportTables(Result.ObjHeaps, Result.ObjHCtxs);

  for (const auto &PPtr : Parts) {
    Partition &P = *PPtr;
    Result.PeakBytes += P.memoryBytes();
    Result.CallEdges.insert(Result.CallEdges.end(), P.CallEdges.begin(),
                            P.CallEdges.end());
    Result.Reachable.insert(Result.Reachable.end(), P.ReachableList.begin(),
                            P.ReachableList.end());
    for (size_t I = 0; I < P.Nodes.size(); ++I) {
      const Partition::Desc &D = P.Descs[I];
      if (isPortal(D.Kind))
        continue; // Portals are routing state, not analysis facts.
      ++Result.SolverNodes;
      Partition::Node &N = P.Nodes[I];
      if (N.Set.empty())
        continue;
      std::vector<uint32_t> ObjList;
      ObjList.reserve(N.Set.size());
      N.Set.forEach([&ObjList](uint32_t Obj) { ObjList.push_back(Obj); });
      std::sort(ObjList.begin(), ObjList.end());
      if (D.Kind == PK::VarCtx) {
        Result.VarFacts.push_back(
            {VarId(D.A), CtxId(D.B), std::move(ObjList)});
      } else if (D.Kind == PK::FieldSlot) {
        Result.FieldFacts.push_back({D.A, FieldId(D.B), std::move(ObjList)});
      } else if (D.Kind == PK::StaticSlot) {
        Result.StaticFacts.push_back({FieldId(D.A), std::move(ObjList)});
      } else {
        Result.ThrowFacts.push_back(
            {MethodId(D.A), CtxId(D.B), std::move(ObjList)});
      }
    }
  }
  return Result;
}

AnalysisResult Engine::solve(unsigned Threads, SummaryStats *Stats) {
  Stopwatch Wall;
  CtxId Initial;
  {
    std::lock_guard<std::mutex> Lock(PolicyMu);
    Initial = Policy.initialContext();
  }

  // Seed: warm-start methods first, then entry points — same effective
  // reachable seeding as Solver::run (order is irrelevant to the
  // fixpoint; both are requests into the owners' inboxes).
  auto seed = [&](MethodId M, prov::Rule Why) {
    Msg Message;
    Message.Kind = MsgKind::Reach;
    Message.A = M.index();
    Message.B = Initial.index();
    if (PT_PROV_ACTIVE(Opts.Prov))
      Message.WhyRule = static_cast<uint8_t>(Why);
    post(partOfMethod(M), Message);
  };

  uint64_t PoolTasks = 0, Steals = 0, IdleBackoffs = 0;
  {
    std::optional<trace::TraceRecorder::Span> Sweep;
    if (Opts.Trace)
      Sweep.emplace(Opts.Trace, "sweep", "summary");
    if (Threads > 1) {
      ThreadPool WorkPool(Threads);
      Pool = &WorkPool;
      for (MethodId Seed : Opts.SeedReachable)
        seed(Seed, prov::Rule::Seed);
      for (MethodId Entry : Prog.entryPoints())
        seed(Entry, prov::Rule::Entry);
      {
        std::unique_lock<std::mutex> Lock(DoneMu);
        while (TasksInFlight.load(std::memory_order_acquire) != 0) {
          DoneCv.wait_for(Lock, std::chrono::milliseconds(25));
          Lock.unlock();
          maybeHeartbeat();
          Lock.lock();
        }
      }
      WorkPool.wait();
      ThreadPool::Stats PS = WorkPool.stats();
      PoolTasks = PS.Executed;
      Steals = PS.Stolen;
      IdleBackoffs = PS.IdleBackoffs;
      Pool = nullptr;
      // WorkPool joins its workers here, which also publishes every
      // partition's memory to this thread before harvest.
    } else {
      for (MethodId Seed : Opts.SeedReachable)
        seed(Seed, prov::Rule::Seed);
      for (MethodId Entry : Prog.entryPoints())
        seed(Entry, prov::Rule::Entry);
      while (!ReadyHeap.empty()) {
        uint32_t Part = ReadyHeap.top();
        ReadyHeap.pop();
        runTask(Part);
      }
    }
  }

  if (Opts.Trace) {
    std::lock_guard<std::mutex> Lock(HbMu);
    emitHeartbeatLocked(/*Final=*/true);
  }

  AnalysisResult Result = harvest();
  Result.SolveMs = Wall.elapsedMs();

  if (Stats) {
    Stats->NumSCCs = Cond.NumSCCs;
    for (uint32_t D : Cond.Depth)
      Stats->MaxDepth = std::max(Stats->MaxDepth, D);
    Stats->Threads = Threads;
    Stats->PoolTasks = PoolTasks;
    Stats->Steals = Steals;
    Stats->IdleBackoffs = IdleBackoffs;
    Stats->CrossMsgs = Result.Counters.CrossMsgs;
    Stats->SummaryHits = Result.Counters.SummaryHits;
    Stats->SummaryMisses = Result.Counters.SummaryMisses;
    Stats->SummaryInstantiations = Result.Counters.SummaryInstantiations;
    Stats->WallMs = Result.SolveMs;
    // Work/span over the SCC DAG: critical path accumulates busy time
    // along dependency chains (successors have smaller ids, so one
    // ascending pass sees every callee before its callers).
    std::vector<double> Chain(Cond.NumSCCs, 0.0);
    double TotalBusy = 0.0, Longest = 0.0;
    for (uint32_t S = 0; S < Cond.NumSCCs; ++S) {
      double BusyMs = static_cast<double>(Parts[S]->BusyUs.load(
                          std::memory_order_relaxed)) /
                      1000.0;
      TotalBusy += BusyMs;
      if (Parts[S]->Activations != 0)
        ++Stats->ActivatedSCCs;
      Stats->Activations += Parts[S]->Activations;
      double Deepest = 0.0;
      for (uint32_t T : Cond.Succs[S])
        Deepest = std::max(Deepest, Chain[T]);
      Chain[S] = BusyMs + Deepest;
      Longest = std::max(Longest, Chain[S]);
    }
    Stats->TotalBusyMs = TotalBusy;
    Stats->CriticalPathMs = Longest;
  }
  return Result;
}

} // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

AnalysisResult pt::summary::solveSummary(const Program &Prog,
                                         ContextPolicy &Policy,
                                         const SolverOptions &Opts,
                                         SummaryStats *Stats) {
  assert(Prog.isFinalized() && "solver needs a finalized program");
  unsigned Threads = ThreadPool::resolveThreads(Opts.SummaryThreads);

  if (Prog.numMethods() == 0) {
    AnalysisResult Empty(Prog, Policy);
    if (Stats)
      Stats->Threads = Threads;
    return Empty;
  }

  Stopwatch Wall;
  Condensation Cond;
  {
    std::optional<trace::TraceRecorder::Span> Span;
    if (Opts.Trace)
      Span.emplace(Opts.Trace, "condense", "summary");
    Cond = condenseProgram(Prog);
  }
  Engine E(Prog, Policy, Opts, std::move(Cond));
  AnalysisResult Result = E.solve(Threads, Stats);
  // Charge condensation to the cell like any other solve cost.
  Result.SolveMs = Wall.elapsedMs();
  if (Stats)
    Stats->WallMs = Result.SolveMs;
  return Result;
}

AnalysisResult pt::solveProgram(const Program &Prog, ContextPolicy &Policy,
                                const SolverOptions &Opts) {
  if (Opts.Engine == SolverEngine::Summary)
    return summary::solveSummary(Prog, Policy, Opts);
  Solver S(Prog, Policy, Opts);
  return S.run();
}
