//===- pta/summary/Condense.h - Call-graph SCC condensation -----*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structural pre-pass of the compositional summary solver
/// (docs/PERF.md): condense a context-insensitive over-approximation of
/// the call graph into strongly connected components and order the SCC DAG
/// bottom-up (callees before callers), so independent components can be
/// solved concurrently and each component sees its callees' summaries
/// before it starts.
///
/// The pre-graph is an RTA-style approximation: every method is a node,
/// static calls edge to their resolved target, and a virtual call edges to
/// \c lookup(T, sig) for every instantiated type T (all heap-site types —
/// reachability is not known yet).  Precision here only affects *schedule*
/// quality, never results: the summary solver routes facts between
/// components by message, so a callee the pre-graph missed simply lands in
/// a different component and costs some extra cross-component traffic.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_SUMMARY_CONDENSE_H
#define HYBRIDPT_PTA_SUMMARY_CONDENSE_H

#include "support/Ids.h"

#include <cstdint>
#include <vector>

namespace pt {

class Program;

namespace summary {

/// The SCC condensation of a directed graph over dense node ids.
struct Condensation {
  /// Number of components.  Component ids are Tarjan emission order,
  /// which is a reverse-topological (bottom-up) order of the DAG: every
  /// successor (callee) component has a smaller id than its callers.
  uint32_t NumSCCs = 0;
  /// Node index -> component id.
  std::vector<uint32_t> SccOf;
  /// Component id -> member node indices, in ascending node order.
  std::vector<std::vector<uint32_t>> Members;
  /// Component id -> distinct successor components (edges point from
  /// caller-component to callee-component), ascending, no self-loops.
  std::vector<std::vector<uint32_t>> Succs;
  /// Component ids in bottom-up order (callees before callers).  With
  /// Tarjan emission ids this is simply 0, 1, ..., NumSCCs-1; kept
  /// explicit so consumers do not depend on that accident.
  std::vector<uint32_t> Topo;
  /// Component id -> position in \c Topo (the bottom-up rank).
  std::vector<uint32_t> TopoRank;
  /// Component id -> longest successor-path length below it (leaves are
  /// 0).  The maximum over all components is the DAG's height — a lower
  /// bound on sequential sweep depth.
  std::vector<uint32_t> Depth;

  /// True when \p A and \p B are in the same component.
  bool sameScc(uint32_t A, uint32_t B) const {
    return SccOf[A] == SccOf[B];
  }
};

/// Condenses the graph with \p NumNodes nodes and adjacency \p Succ
/// (Succ[n] = successor node indices; duplicates and self-loops allowed).
/// Iterative Tarjan — no recursion, so deep call chains cannot overflow
/// the stack.  Deterministic for fixed input.
Condensation condenseGraph(uint32_t NumNodes,
                           const std::vector<std::vector<uint32_t>> &Succ);

/// Builds the RTA-style context-insensitive call graph over all methods
/// of \p Prog: Out[m] lists callee method indices of every invoke in m
/// (static targets plus virtual lookups over all heap-site types).
std::vector<std::vector<uint32_t>> buildStaticCallGraph(const Program &Prog);

/// Convenience: condenseGraph over buildStaticCallGraph.
Condensation condenseProgram(const Program &Prog);

} // namespace summary
} // namespace pt

#endif // HYBRIDPT_PTA_SUMMARY_CONDENSE_H
