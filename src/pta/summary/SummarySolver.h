//===- pta/summary/SummarySolver.h - Compositional SCC solver ---*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compositional solving mode (`--solver=summary`, docs/PERF.md): the
/// context-insensitive call graph is condensed into SCCs (Condense.h) and
/// each component becomes a *partition* — a mini difference-propagation
/// solver over the nodes it owns, with memoized (method, context)
/// instantiation playing the role of value-contexts-style method summaries
/// (Padhye & Khedker; see PAPERS.md).  Call sites instantiate callee
/// summaries under the cell's Record/Merge policy exactly as the worklist
/// solver does; facts and edges that cross component boundaries travel as
/// messages, so iteration happens only *within* an SCC and independent
/// SCCs of the bottom-up sweep solve concurrently on a work-stealing
/// `support/ThreadPool`.
///
/// Both engines compute the same least fixpoint: the rule system is
/// monotone with deterministic rule functions, so the fixpoint is unique
/// regardless of schedule, and the canonical sorted exports
/// (AnalysisResult) are bit-identical to the worklist solver's at any
/// worker-thread count.  Schedule-dependent *diagnostics* (replay/dedup
/// telemetry counters, PeakBytes) are deterministic only in
/// single-threaded summary mode.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_SUMMARY_SUMMARYSOLVER_H
#define HYBRIDPT_PTA_SUMMARY_SUMMARYSOLVER_H

#include "pta/Solver.h"

#include <cstdint>

namespace pt {

class Program;
class ContextPolicy;

namespace summary {

/// Scheduler and memoization statistics of one summary-mode run, for
/// BENCH_summary.json and the perf docs.  Memoization counters mirror the
/// telemetry counters of the result (all-zero without HYBRIDPT_TELEMETRY);
/// scheduling fields are always live.
struct SummaryStats {
  uint32_t NumSCCs = 0;        ///< Partitions (call-graph SCCs).
  uint32_t MaxDepth = 0;       ///< Height of the SCC DAG.
  uint64_t ActivatedSCCs = 0;  ///< Partitions that ever ran.
  uint64_t Activations = 0;    ///< Drain tasks executed (scc_tasks).
  uint64_t CrossMsgs = 0;      ///< Cross-partition messages sent.
  uint64_t SummaryHits = 0;    ///< Memoized (method, ctx) re-requests.
  uint64_t SummaryMisses = 0;  ///< Fresh (method, ctx) instantiations.
  uint64_t SummaryInstantiations = 0; ///< Call-site summary links.
  double TotalBusyMs = 0.0;    ///< Work: summed partition busy time.
  double CriticalPathMs = 0.0; ///< Span: busiest dependency chain.
  double WallMs = 0.0;         ///< Wall clock of the whole solve.
  unsigned Threads = 1;        ///< Resolved worker-thread count.
  uint64_t PoolTasks = 0;      ///< Jobs the pool executed (0 inline).
  uint64_t Steals = 0;         ///< Work-stealing migrations.
  uint64_t IdleBackoffs = 0;   ///< Worker idle sleeps.

  /// Work/span parallelism — the speedup an unbounded machine could get.
  double parallelism() const {
    return CriticalPathMs > 0.0 ? TotalBusyMs / CriticalPathMs : 1.0;
  }
};

/// Runs the summary engine on \p Prog under \p Policy.
/// \p Opts.SummaryThreads picks the worker count (1 = deterministic
/// inline sweep, 0 = hardware concurrency); budgets, cancellation, fault
/// plans, seeds and heartbeats behave as in the worklist solver.  When
/// \p Stats is non-null it receives the run's scheduler statistics.
AnalysisResult solveSummary(const Program &Prog, ContextPolicy &Policy,
                            const SolverOptions &Opts,
                            SummaryStats *Stats = nullptr);

} // namespace summary
} // namespace pt

#endif // HYBRIDPT_PTA_SUMMARY_SUMMARYSOLVER_H
