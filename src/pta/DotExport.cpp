//===- pta/DotExport.cpp ---------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/DotExport.h"

#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "support/Hashing.h"

#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>

using namespace pt;

namespace {

/// DOT-escapes a label.
std::string escape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

} // namespace

void pt::writeCallGraphDot(const AnalysisResult &Result, std::ostream &OS,
                           const CallGraphDotOptions &Opts) {
  const Program &Prog = Result.program();

  // Context-insensitive edges: caller method -> callee method.
  std::set<std::pair<uint32_t, uint32_t>> Edges;
  std::map<uint32_t, size_t> Degree;
  for (const CallGraphEdge &E : Result.CallEdges) {
    uint32_t Caller = Prog.invoke(E.Invo).InMethod.index();
    uint32_t Callee = E.Callee.index();
    if (Edges.insert({Caller, Callee}).second) {
      ++Degree[Caller];
      ++Degree[Callee];
    }
  }

  auto Keep = [&](uint32_t M) {
    return Opts.HubLimit == 0 || Degree[M] <= Opts.HubLimit;
  };

  OS << "digraph callgraph {\n  rankdir=LR;\n  node [shape=box, "
        "fontsize=9];\n";

  // Nodes, optionally clustered by class.
  std::set<uint32_t> Methods;
  for (const auto &[Caller, Callee] : Edges) {
    if (Keep(Caller))
      Methods.insert(Caller);
    if (Keep(Callee))
      Methods.insert(Callee);
  }
  if (Opts.ClusterByClass) {
    std::map<uint32_t, std::set<uint32_t>> ByClass;
    for (uint32_t M : Methods)
      ByClass[Prog.method(MethodId(M)).Owner.index()].insert(M);
    for (const auto &[Cls, Members] : ByClass) {
      OS << "  subgraph cluster_" << Cls << " {\n    label=\""
         << escape(Prog.text(Prog.type(TypeId(Cls)).Name)) << "\";\n";
      for (uint32_t M : Members)
        OS << "    m" << M << " [label=\""
           << escape(Prog.qualifiedName(MethodId(M))) << "\"];\n";
      OS << "  }\n";
    }
  } else {
    for (uint32_t M : Methods)
      OS << "  m" << M << " [label=\""
         << escape(Prog.qualifiedName(MethodId(M))) << "\"];\n";
  }

  for (const auto &[Caller, Callee] : Edges)
    if (Keep(Caller) && Keep(Callee))
      OS << "  m" << Caller << " -> m" << Callee << ";\n";
  OS << "}\n";
}

void pt::writePointsToDot(const AnalysisResult &Result, MethodId Focus,
                          std::ostream &OS) {
  const Program &Prog = Result.program();
  const MethodInfo &Body = Prog.method(Focus);

  std::set<uint32_t> FocusVars;
  for (VarId V : Body.Locals)
    FocusVars.insert(V.index());

  OS << "digraph pointsto {\n  rankdir=LR;\n"
        "  node [fontsize=9];\n";

  // Variable -> heap edges (context-insensitive projection).
  std::set<uint32_t> Heaps;
  std::set<std::pair<uint32_t, uint32_t>> VarEdges;
  for (const auto &E : Result.VarFacts) {
    if (!FocusVars.count(E.Var.index()))
      continue;
    for (uint32_t Obj : E.Objs) {
      uint32_t H = Result.objHeap(Obj).index();
      Heaps.insert(H);
      VarEdges.insert({E.Var.index(), H});
    }
  }

  for (uint32_t V : FocusVars) {
    bool Points = false;
    for (const auto &[Var, H] : VarEdges)
      if (Var == V) {
        Points = true;
        break;
      }
    if (!Points)
      continue;
    OS << "  v" << V << " [shape=box, label=\""
       << escape(Prog.text(Prog.var(VarId(V)).Name)) << "\"];\n";
  }
  for (uint32_t H : Heaps)
    OS << "  h" << H << " [shape=ellipse, label=\""
       << escape(Prog.text(Prog.heap(HeapId(H)).Name)) << "\"];\n";
  for (const auto &[V, H] : VarEdges)
    OS << "  v" << V << " -> h" << H << ";\n";

  // Field edges among the displayed objects.
  std::set<std::pair<uint64_t, uint32_t>> FieldEdges; // (packed pair, fld)
  for (const auto &E : Result.FieldFacts) {
    uint32_t BaseH = Result.objHeap(E.BaseObj).index();
    if (!Heaps.count(BaseH))
      continue;
    for (uint32_t Obj : E.Objs) {
      uint32_t H = Result.objHeap(Obj).index();
      if (!Heaps.count(H))
        continue;
      if (FieldEdges.insert({packPair(BaseH, H), E.Fld.index()}).second)
        OS << "  h" << BaseH << " -> h" << H << " [style=dashed, label=\""
           << escape(Prog.text(Prog.field(E.Fld).Name)) << "\"];\n";
    }
  }
  OS << "}\n";
}

std::string pt::callGraphDot(const AnalysisResult &Result,
                             const CallGraphDotOptions &Opts) {
  std::ostringstream OS;
  writeCallGraphDot(Result, OS, Opts);
  return OS.str();
}

std::string pt::pointsToDot(const AnalysisResult &Result, MethodId Focus) {
  std::ostringstream OS;
  writePointsToDot(Result, Focus, OS);
  return OS.str();
}
