//===- pta/Projection.cpp ------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/Projection.h"

#include "ir/Program.h"
#include "pta/AnalysisResult.h"

#include <sstream>

using namespace pt;

CiProjection pt::ciProject(const AnalysisResult &R) {
  CiProjection P;
  for (const AnalysisResult::VarFactsEntry &E : R.VarFacts)
    for (uint32_t Obj : E.Objs)
      P.VarPointsTo.emplace(E.Var.index(), R.objHeap(Obj).index());
  for (const CallGraphEdge &E : R.CallEdges)
    P.CallEdges.emplace(E.Invo.index(), E.Callee.index());
  for (const auto &[M, Ctx] : R.Reachable)
    P.ReachableMethods.insert(M.index());
  for (const AnalysisResult::StaticFactsEntry &E : R.StaticFacts)
    for (uint32_t Obj : E.Objs)
      P.StaticFieldPointsTo.emplace(E.Fld.index(), R.objHeap(Obj).index());
  for (const AnalysisResult::FieldFactsEntry &E : R.FieldFacts)
    for (uint32_t Obj : E.Objs)
      P.FieldPointsTo.emplace(R.objHeap(E.BaseObj).index(), E.Fld.index(),
                              R.objHeap(Obj).index());
  const Program &Prog = R.program();
  for (uint32_t Site = 0; Site < Prog.numCastSites(); ++Site)
    if (R.mayFailCast(Site))
      P.MayFailCasts.insert(Site);
  return P;
}

namespace {

std::string varLabel(const Program &Prog, uint32_t V) {
  const VarInfo &Info = Prog.var(VarId(V));
  return Prog.qualifiedName(Info.Owner) + ":" + Prog.text(Info.Name);
}

std::string heapLabel(const Program &Prog, uint32_t H) {
  return Prog.text(Prog.heap(HeapId(H)).Name);
}

std::string invokeLabel(const Program &Prog, uint32_t I) {
  const InvokeInfo &Info = Prog.invoke(InvokeId(I));
  return Prog.qualifiedName(Info.InMethod) + ":" + Prog.text(Info.Name);
}

std::string fieldLabel(const Program &Prog, uint32_t F) {
  return Prog.text(Prog.field(FieldId(F)).Name);
}

std::string castLabel(const Program &Prog, uint32_t Site) {
  const CastSite &CS = Prog.castSite(Site);
  std::ostringstream OS;
  OS << Prog.qualifiedName(CS.InMethod) << ": "
     << Prog.text(Prog.var(CS.To).Name) << " = ("
     << Prog.text(Prog.type(CS.Target).Name) << ") "
     << Prog.text(Prog.var(CS.From).Name);
  return OS.str();
}

/// Reports the facts of \p Fine missing from \p Coarse for one relation,
/// rendering each missing fact through \p Render.
template <typename SetT, typename RenderFn>
size_t diffRelation(const char *Relation, const SetT &Fine,
                    const SetT &Coarse, const std::string &FineLabel,
                    const std::string &CoarseLabel, RenderFn Render,
                    std::vector<CiViolation> &Out, size_t MaxPerRelation) {
  size_t Missing = 0;
  for (const auto &Fact : Fine) {
    if (Coarse.count(Fact))
      continue;
    ++Missing;
    if (Missing <= MaxPerRelation) {
      std::ostringstream OS;
      OS << Relation << ": " << Render(Fact) << " — present in " << FineLabel
         << ", missing from " << CoarseLabel;
      Out.push_back({Relation, OS.str()});
    }
  }
  if (Missing > MaxPerRelation) {
    std::ostringstream OS;
    OS << Relation << ": ... and " << (Missing - MaxPerRelation)
       << " more facts of " << FineLabel << " missing from " << CoarseLabel;
    Out.push_back({Relation, OS.str()});
  }
  return Missing;
}

} // namespace

size_t pt::diffContainment(const CiProjection &Fine, const CiProjection &Coarse,
                           const Program &Prog, const std::string &FineLabel,
                           const std::string &CoarseLabel,
                           std::vector<CiViolation> &Out,
                           size_t MaxPerRelation) {
  size_t Missing = 0;
  Missing += diffRelation(
      "VarPointsTo", Fine.VarPointsTo, Coarse.VarPointsTo, FineLabel,
      CoarseLabel,
      [&](const std::pair<uint32_t, uint32_t> &F) {
        return varLabel(Prog, F.first) + " -> " + heapLabel(Prog, F.second);
      },
      Out, MaxPerRelation);
  Missing += diffRelation(
      "CallEdges", Fine.CallEdges, Coarse.CallEdges, FineLabel, CoarseLabel,
      [&](const std::pair<uint32_t, uint32_t> &F) {
        return invokeLabel(Prog, F.first) + " -> " +
               Prog.qualifiedName(MethodId(F.second));
      },
      Out, MaxPerRelation);
  Missing += diffRelation(
      "ReachableMethods", Fine.ReachableMethods, Coarse.ReachableMethods,
      FineLabel, CoarseLabel,
      [&](uint32_t M) { return Prog.qualifiedName(MethodId(M)); }, Out,
      MaxPerRelation);
  Missing += diffRelation(
      "StaticFieldPointsTo", Fine.StaticFieldPointsTo,
      Coarse.StaticFieldPointsTo, FineLabel, CoarseLabel,
      [&](const std::pair<uint32_t, uint32_t> &F) {
        return fieldLabel(Prog, F.first) + " -> " + heapLabel(Prog, F.second);
      },
      Out, MaxPerRelation);
  Missing += diffRelation(
      "FieldPointsTo", Fine.FieldPointsTo, Coarse.FieldPointsTo, FineLabel,
      CoarseLabel,
      [&](const std::tuple<uint32_t, uint32_t, uint32_t> &F) {
        return heapLabel(Prog, std::get<0>(F)) + "." +
               fieldLabel(Prog, std::get<1>(F)) + " -> " +
               heapLabel(Prog, std::get<2>(F));
      },
      Out, MaxPerRelation);
  Missing += diffRelation(
      "MayFailCasts", Fine.MayFailCasts, Coarse.MayFailCasts, FineLabel,
      CoarseLabel, [&](uint32_t Site) { return castLabel(Prog, Site); }, Out,
      MaxPerRelation);
  return Missing;
}
