//===- pta/Metrics.h - Table 1 precision/performance metrics ---*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the precision and performance metrics of the paper's Table 1
/// from an \c AnalysisResult:
///
///  - average points-to set size over variables ("avg. objs per var"),
///  - context-insensitive call-graph edges,
///  - virtual call sites that cannot be devirtualized ("poly v-calls"),
///  - casts that cannot be statically proven safe ("may-fail casts"),
///  - context-sensitive var-points-to size (the paper's
///    platform-independent internal complexity metric), and
///  - supporting reference counts (reachable methods/v-calls/casts).
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_METRICS_H
#define HYBRIDPT_PTA_METRICS_H

#include "pta/AnalysisResult.h"
#include "support/Telemetry.h"

#include <cstddef>
#include <string>
#include <vector>

namespace pt {

/// One rung the fallback ladder tried for a cell before landing
/// (pta/Degrade.h): the policy, how long the attempt ran, and why it
/// stopped (\c AbortReason::None for the landed converged rung).
struct RungAttempt {
  std::string Policy;
  double SolveMs = 0.0;
  AbortReason Reason = AbortReason::None;
};

/// One Table 1 cell group for a single (benchmark, analysis) pair.
struct PrecisionMetrics {
  /// Average size of the context-insensitive points-to set, over variables
  /// that point to at least one object.
  double AvgPointsTo = 0.0;
  /// Distinct (invocation site, callee) pairs.
  size_t CallGraphEdges = 0;
  /// Methods reachable in at least one context.
  size_t ReachableMethods = 0;
  /// Reachable virtual call sites with two or more possible targets.
  size_t PolyVCalls = 0;
  /// Reachable virtual call sites (reference count in the table heading).
  size_t ReachableVCalls = 0;
  /// Reachable cast sites that may observe an incompatible object.
  size_t MayFailCasts = 0;
  /// Reachable cast sites (reference count in the table heading).
  size_t ReachableCasts = 0;
  /// Context-sensitive var-points-to facts ("sensitive var-points-to").
  size_t CsVarPointsTo = 0;
  /// Context-sensitive field-points-to facts.
  size_t FieldPointsTo = 0;
  /// Static (global) field facts.
  size_t StaticFieldPointsTo = 0;
  /// Method-throws facts (context-sensitive escaping exceptions).
  size_t ThrowFacts = 0;
  /// Distinct (sink site, argument, tag) triples where a reachable taint
  /// sink argument may receive a tagged object (the tainted-sink client);
  /// always 0 for programs without taint instrumentation.
  size_t TaintedSinks = 0;
  /// Distinct exception heap sites escaping main uncaught.
  size_t UncaughtExceptionSites = 0;
  /// Distinct method contexts, heap contexts, and (heap, hctx) objects.
  size_t NumContexts = 0;
  size_t NumHContexts = 0;
  size_t NumObjects = 0;
  /// Wall-clock solve time in milliseconds.
  double SolveMs = 0.0;
  /// Peak solver node count (graph size).
  size_t PeakNodes = 0;
  /// Peak bytes held by the solver's persistent containers — real memory
  /// accounting (ObjectSet + intern/dedup tables), not a node-count proxy.
  size_t PeakBytes = 0;
  /// Rule-fire and infrastructure counters (all-zero without
  /// HYBRIDPT_TELEMETRY).
  telemetry::SolverCounters Counters;
  /// True when the run aborted on a budget (paper's dash entries).
  bool Aborted = false;
  /// Why the run aborted; \c None when it converged.
  AbortReason Reason = AbortReason::None;
  /// True when the abort was staged by the fault-injection plan.
  bool FaultInjected = false;
  /// Graceful degradation (pta/Degrade.h): when the requested policy
  /// aborted and the fallback ladder landed a coarser rung, \c
  /// FallbackFrom names the requested policy and \c LandedPolicy the rung
  /// these metrics actually describe.  Both empty for a native run.
  std::string FallbackFrom;
  std::string LandedPolicy;
  /// Every rung the ladder tried, in order, landed rung last; empty when
  /// the ladder was not engaged.
  std::vector<RungAttempt> LadderTrail;
  /// Rendered cost-attribution profile (prov::renderBlameJson) of this
  /// cell's run; empty unless the matrix ran with \c MatrixOptions::Profile
  /// and the build carries provenance.  Folded into BENCH json as the
  /// cell's "profile" object.
  std::string ProfileJson;
};

/// Computes all metrics for \p Result.
PrecisionMetrics computeMetrics(const AnalysisResult &Result);

/// The machine-readable metric row shared by the batch CLI (--csv) and the
/// serving layer's callgraph answers — one renderer so a daemon reply is
/// bit-identical to the batch output by construction (docs/SERVING.md).
/// \p WithTime controls the time_s column: the daemon omits it because a
/// cached answer's solve time is not a property of the request.
std::string metricsCsvHeader(bool Taint, bool WithTime = true);
std::string metricsCsvRow(const PrecisionMetrics &M, const std::string &Label,
                          bool Taint, bool WithTime = true);

} // namespace pt

#endif // HYBRIDPT_PTA_METRICS_H
