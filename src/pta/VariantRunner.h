//===- pta/VariantRunner.h - Parallel analysis-variant matrix ---*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a set of context policies over one program concurrently.  The
/// analysis-variant matrix (Table 1 / Fig. 3) is embarrassingly parallel:
/// each cell is an independent \c Solver over an immutable \c Program, so
/// the runner simply fans the cells out over a \c ThreadPool with per-run
/// time/fact budgets and collects the metrics in policy order.
///
/// Results are bit-identical regardless of thread count (asserted by the
/// determinism test): solvers share nothing but the read-only program.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_VARIANTRUNNER_H
#define HYBRIDPT_PTA_VARIANTRUNNER_H

#include "pta/Metrics.h"
#include "pta/Solver.h"

#include <string>
#include <vector>

namespace pt {

class Program;

/// Configuration for one matrix run.
struct MatrixOptions {
  /// Per-run budgets (time and fact caps apply to every cell).  Its
  /// \c Trace sink, when set, receives one span per cell plus
  /// solve/metrics phase spans and the cells' heartbeats.
  SolverOptions Solver;
  /// Worker threads; 0 = one per hardware thread.
  unsigned Threads = 1;
  /// Repetitions per cell; the reported cell is the repetition with the
  /// median SolveMs (the paper's "medians of three runs"), so its time and
  /// counters describe one coherent run.  A genuine resource-budget abort
  /// (time/facts/memory, not fault-injected) short-circuits the remaining
  /// repetitions — the same budget will abort again — and reports the
  /// aborted repetition itself; injected-fault and cancellation aborts do
  /// not short-circuit, and the median is taken over whatever repetitions
  /// completed.
  uint32_t Runs = 1;
  /// Prefix for cell trace labels, typically "<benchmark>/"; the policy
  /// name is appended per cell.
  std::string TraceLabelPrefix;
  /// Graceful degradation (pta/Degrade.h): when a cell aborts on a
  /// resource budget, descend its fallback ladder instead of reporting a
  /// dash.  Degraded cells carry FallbackFrom/LandedPolicy/LadderTrail.
  bool UseLadder = false;
  /// Explicit ladder tail applied after each cell's own policy; empty =
  /// the derived default ladder.  Only meaningful with \c UseLadder.
  std::vector<std::string> LadderRungs;
  /// Record derivation provenance per cell and attach the rendered blame
  /// profile (prov::renderBlameJson) to \c PrecisionMetrics::ProfileJson.
  /// Each repetition gets its own recorder — cells run concurrently and
  /// fact payloads embed per-run object ids — so \c Solver.Prov is ignored
  /// by the matrix.  No-op when the build compiles provenance out.
  bool Profile = false;
  /// Rows per attribution bucket in the per-cell profile.
  size_t ProfileTopK = 10;
};

/// Runs every policy in \p Policies over \p Prog (concurrently when
/// \c Threads > 1) and returns the metrics in the same order.  Unknown
/// policy names yield a default-constructed, aborted cell.
std::vector<PrecisionMetrics>
runVariantMatrix(const Program &Prog, const std::vector<std::string> &Policies,
                 const MatrixOptions &Opts);

} // namespace pt

#endif // HYBRIDPT_PTA_VARIANTRUNNER_H
