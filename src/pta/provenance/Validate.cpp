//===- pta/provenance/Validate.cpp - Re-check derivation steps -----------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays recorded derivation steps against the Figure-2 side conditions.
/// A step is accepted when *some* instruction of the relevant method
/// justifies it (the instruction bag is flow-insensitive, so any witness
/// is as good as another), all type filters hold, and — when a policy is
/// supplied — the context constructors reproduce the recorded contexts.
/// This is the oracle behind the derivation-replay fuzz axis: both
/// engines, at any thread count, must only ever record checkable steps.
///
//===----------------------------------------------------------------------===//

#include "pta/provenance/Provenance.h"

#include "context/ContextTable.h"
#include "context/CutShortcut.h"
#include "context/Policy.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "support/Hashing.h"

#include <algorithm>
#include <string>

using namespace pt;
using namespace pt::prov;

namespace {

/// Decoded view of one fact, with payload split per kind.
struct FactView {
  FactKind Kind;
  uint32_t A0 = 0; ///< var / baseObj / fld / method / invoke.
  uint32_t A1 = 0; ///< ctx / fld / callerCtx (kind-dependent).
  uint32_t Obj = 0;
  uint32_t Callee = 0;
  uint32_t CalleeCtx = 0;
};

FactView decode(const Fact &F) {
  FactView V;
  V.Kind = F.Kind;
  V.A0 = unpackHi(F.A);
  V.A1 = unpackLo(F.A);
  if (F.Kind == FactKind::StaticPointsTo) {
    V.A0 = static_cast<uint32_t>(F.A);
    V.A1 = 0;
  }
  if (F.Kind == FactKind::CallEdge) {
    V.Callee = unpackHi(F.B64);
    V.CalleeCtx = unpackLo(F.B64);
  } else {
    V.Obj = static_cast<uint32_t>(F.B64);
  }
  return V;
}

/// Checks one step; empty string = accepted.
class StepChecker {
public:
  StepChecker(const Recorder &R, const AnalysisResult &Res,
              ContextPolicy *Policy)
      : R(R), Res(Res), Prog(Res.program()), Policy(Policy) {}

  std::string check(const Step &S) {
    if (S.Target >= R.numFacts())
      return "step targets fact id out of range";
    Fact TF = R.fact(S.Target);
    FactView T = decode(TF);
    FactView P0, P1;
    bool HasP0 = S.Prem0 != InvalidFact, HasP1 = S.Prem1 != InvalidFact;
    if (HasP0) {
      if (S.Prem0 >= R.numFacts())
        return "premise 0 out of range";
      P0 = decode(R.fact(S.Prem0));
    }
    if (HasP1) {
      if (S.Prem1 >= R.numFacts())
        return "premise 1 out of range";
      P1 = decode(R.fact(S.Prem1));
    }
    switch (S.rule()) {
    case Rule::Entry:
      return checkEntry(T, HasP0 || HasP1);
    case Rule::Seed:
      return T.Kind == FactKind::Reachable ? "" : "seed of non-Reachable";
    case Rule::ReachCall:
      return checkReachCall(T, P0, HasP0);
    case Rule::Alloc:
      return checkAlloc(T, P0, HasP0);
    case Rule::Move:
      return checkMoveCast(T, P0, HasP0, /*IsCast=*/false);
    case Rule::Cast:
      return checkMoveCast(T, P0, HasP0, /*IsCast=*/true);
    case Rule::Load:
      return checkLoad(T, P0, P1, HasP0 && HasP1);
    case Rule::Store:
      return checkStore(T, P0, P1, HasP0 && HasP1);
    case Rule::StaticLoad:
      return checkStaticLoad(T, P0, HasP0);
    case Rule::StaticStore:
      return checkStaticStore(T, P0, HasP0);
    case Rule::VCall:
      return checkVCall(T, P0, HasP0);
    case Rule::SCall:
      return checkSCall(T, P0, HasP0);
    case Rule::ThisBind:
      return checkThisBind(T, P0, P1, HasP0 && HasP1);
    case Rule::ParamBind:
      return checkParamBind(T, P0, P1, HasP0 && HasP1);
    case Rule::ReturnBind:
      return checkReturnBind(T, P0, P1, HasP0 && HasP1);
    case Rule::ThrowRaise:
      return checkThrowLocal(T, P0, HasP0, /*Caught=*/false);
    case Rule::CatchBind:
      return checkThrowLocal(T, P0, HasP0, /*Caught=*/true);
    case Rule::ThrowEscalate:
      return checkEscalate(T, P0, P1, HasP0 && HasP1, /*Caught=*/false);
    case Rule::CatchEscalate:
      return checkEscalate(T, P0, P1, HasP0 && HasP1, /*Caught=*/true);
    case Rule::ShortcutStore:
      return checkShortcutStore(T, P0, P1, HasP0 && HasP1);
    case Rule::ShortcutRetArg:
      return checkShortcutRetArg(T, P0, P1, HasP0 && HasP1);
    case Rule::ShortcutRetLoad:
      return checkShortcutRetLoad(T, P0, P1, HasP0 && HasP1);
    case Rule::ShortcutRetAlloc:
      return checkShortcutRetAlloc(T, P0, HasP0 && !HasP1);
    case Rule::Sanitize:
      return checkSanitize(T, P0, HasP0);
    case Rule::NumRules:
      break;
    }
    return "unknown rule";
  }

private:
  TypeId objType(uint32_t Obj) const {
    return Prog.heap(Res.objHeap(Obj)).Type;
  }

  bool objOk(uint32_t Obj) const { return Obj < Res.numObjects(); }

  /// True when method \p M has a handler matching \p ObjType; fills
  /// \p HandlerVar with the first match's binding variable.
  bool findHandler(MethodId M, TypeId ObjType, VarId &HandlerVar) const {
    for (const HandlerInfo &H : Prog.method(M).Handlers)
      if (Prog.isSubtype(ObjType, H.CatchType)) {
        HandlerVar = H.Var;
        return true;
      }
    return false;
  }

  std::string checkEntry(const FactView &T, bool HasPrem) {
    if (T.Kind != FactKind::Reachable)
      return "entry concludes non-Reachable";
    if (HasPrem)
      return "entry with premises";
    for (MethodId M : Prog.entryPoints())
      if (M.rawValue() == T.A0) {
        if (Policy && CtxId(T.A1) != Policy->initialContext())
          return "entry context is not the policy's initial context";
        return "";
      }
    return "entry Reachable of a non-entry method";
  }

  std::string checkReachCall(const FactView &T, const FactView &P, bool Has) {
    if (T.Kind != FactKind::Reachable || !Has)
      return "reach-call shape";
    if (P.Kind != FactKind::CallEdge)
      return "reach-call premise is not a CallEdge";
    if (P.Callee != T.A0 || P.CalleeCtx != T.A1)
      return "reach-call conclusion does not match the edge's callee";
    return "";
  }

  std::string checkAlloc(const FactView &T, const FactView &P, bool Has) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P.Kind != FactKind::Reachable)
      return "alloc shape";
    if (!objOk(T.Obj))
      return "alloc object id out of range";
    VarId V(T.A0);
    if (Prog.var(V).Owner.rawValue() != P.A0)
      return "alloc var not owned by the reachable method";
    if (T.A1 != P.A1)
      return "alloc context differs from the reachable context";
    HeapId H = Res.objHeap(T.Obj);
    for (const AllocInstr &A : Prog.method(MethodId(P.A0)).Allocs)
      if (A.Var == V && A.Heap == H) {
        if (Policy && Policy->record(H, CtxId(T.A1)) != Res.objHCtx(T.Obj))
          return "alloc heap context does not match RECORD";
        return "";
      }
    return "no alloc instruction witnesses this fact";
  }

  std::string checkMoveCast(const FactView &T, const FactView &P, bool Has,
                            bool IsCast) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P.Kind != FactKind::VarPointsTo)
      return "move/cast shape";
    if (T.A1 != P.A1 || T.Obj != P.Obj)
      return "move/cast must preserve context and object";
    if (!objOk(T.Obj))
      return "object id out of range";
    VarId To(T.A0), From(P.A0);
    const MethodInfo &M = Prog.method(Prog.var(To).Owner);
    if (IsCast) {
      // Any witnessing cast whose filter admits the object justifies the
      // step (two casts over the same variable pair may differ in target).
      bool SawPair = false;
      for (const CastInstr &C : M.Casts)
        if (C.To == To && C.From == From) {
          SawPair = true;
          if (Prog.isSubtype(objType(T.Obj), C.Target))
            return "";
        }
      return SawPair ? "cast admits an object that fails the type filter"
                     : "no cast instruction witnesses this fact";
    }
    for (const MoveInstr &Mv : M.Moves)
      if (Mv.To == To && Mv.From == From)
        return "";
    return "no move instruction witnesses this fact";
  }

  std::string checkSanitize(const FactView &T, const FactView &P, bool Has) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P.Kind != FactKind::VarPointsTo)
      return "sanitize shape";
    if (T.A1 != P.A1 || T.Obj != P.Obj)
      return "sanitize must preserve context and object";
    if (!objOk(T.Obj))
      return "object id out of range";
    if (Prog.heap(Res.objHeap(T.Obj)).TaintTag != 0)
      return "sanitize passes a tainted object";
    VarId To(T.A0), From(P.A0);
    for (const SanitizeInstr &S : Prog.method(Prog.var(To).Owner).Sanitizes)
      if (S.To == To && S.From == From)
        return "";
    return "no sanitize instruction witnesses this fact";
  }

  std::string checkLoad(const FactView &T, const FactView &P0,
                        const FactView &P1, bool Has) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P0.Kind != FactKind::FieldPointsTo || P1.Kind != FactKind::VarPointsTo)
      return "load shape (needs FPT + base VPT premises)";
    if (T.Obj != P0.Obj)
      return "load must conclude the field's object";
    if (P1.Obj != P0.A0)
      return "load base premise does not point to the field's base object";
    if (T.A1 != P1.A1)
      return "load conclusion context differs from the base context";
    VarId To(T.A0), Base(P1.A0);
    for (const LoadInstr &L : Prog.method(Prog.var(To).Owner).Loads)
      if (L.To == To && L.Base == Base && L.Fld.rawValue() == P0.A1)
        return "";
    return "no load instruction witnesses this fact";
  }

  std::string checkStore(const FactView &T, const FactView &P0,
                         const FactView &P1, bool Has) {
    if (T.Kind != FactKind::FieldPointsTo || !Has ||
        P0.Kind != FactKind::VarPointsTo || P1.Kind != FactKind::VarPointsTo)
      return "store shape (needs value VPT + base VPT premises)";
    if (T.Obj != P0.Obj)
      return "store must conclude the value premise's object";
    if (P1.Obj != T.A0)
      return "store base premise does not point to the concluded base object";
    if (P0.A1 != P1.A1)
      return "store premises must share one context";
    VarId From(P0.A0), Base(P1.A0);
    for (const StoreInstr &S : Prog.method(Prog.var(From).Owner).Stores)
      if (S.From == From && S.Base == Base && S.Fld.rawValue() == T.A1)
        return "";
    return "no store instruction witnesses this fact";
  }

  std::string checkStaticLoad(const FactView &T, const FactView &P, bool Has) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P.Kind != FactKind::StaticPointsTo)
      return "static-load shape";
    if (T.Obj != P.Obj)
      return "static-load must preserve the object";
    VarId To(T.A0);
    for (const SLoadInstr &L : Prog.method(Prog.var(To).Owner).SLoads)
      if (L.To == To && L.Fld.rawValue() == P.A0)
        return "";
    return "no static-load instruction witnesses this fact";
  }

  std::string checkStaticStore(const FactView &T, const FactView &P,
                               bool Has) {
    if (T.Kind != FactKind::StaticPointsTo || !Has ||
        P.Kind != FactKind::VarPointsTo)
      return "static-store shape";
    if (T.Obj != P.Obj)
      return "static-store must preserve the object";
    VarId From(P.A0);
    for (const SStoreInstr &S : Prog.method(Prog.var(From).Owner).SStores)
      if (S.From == From && S.Fld.rawValue() == T.A0)
        return "";
    return "no static-store instruction witnesses this fact";
  }

  std::string checkVCall(const FactView &T, const FactView &P, bool Has) {
    if (T.Kind != FactKind::CallEdge || !Has ||
        P.Kind != FactKind::VarPointsTo)
      return "vcall shape (needs receiver VPT premise)";
    const InvokeInfo &Inv = Prog.invoke(InvokeId(T.A0));
    if (Inv.IsStatic)
      return "vcall edge at a static invocation site";
    if (Inv.Base.rawValue() != P.A0 || T.A1 != P.A1)
      return "vcall receiver premise does not match the invocation";
    if (!objOk(P.Obj))
      return "receiver object id out of range";
    MethodId Callee = Prog.lookup(objType(P.Obj), Inv.Sig);
    if (!Callee.isValid() || Callee.rawValue() != T.Callee)
      return "vcall LOOKUP does not resolve to the recorded callee";
    if (Policy) {
      HeapId H = Res.objHeap(P.Obj);
      CtxId CC = Policy->merge(H, Res.objHCtx(P.Obj), InvokeId(T.A0),
                               CtxId(T.A1));
      if (CC.rawValue() != T.CalleeCtx)
        return "vcall callee context does not match MERGE";
    }
    return "";
  }

  std::string checkSCall(const FactView &T, const FactView &P, bool Has) {
    if (T.Kind != FactKind::CallEdge || !Has ||
        P.Kind != FactKind::Reachable)
      return "scall shape (needs caller Reachable premise)";
    const InvokeInfo &Inv = Prog.invoke(InvokeId(T.A0));
    if (!Inv.IsStatic)
      return "scall edge at a virtual invocation site";
    if (Inv.InMethod.rawValue() != P.A0 || T.A1 != P.A1)
      return "scall caller premise does not match the invocation";
    if (Inv.Target.rawValue() != T.Callee)
      return "scall target does not match the recorded callee";
    if (Policy &&
        Policy->mergeStatic(InvokeId(T.A0), CtxId(T.A1)).rawValue() !=
            T.CalleeCtx)
      return "scall callee context does not match MERGESTATIC";
    return "";
  }

  std::string checkThisBind(const FactView &T, const FactView &P0,
                            const FactView &P1, bool Has) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P0.Kind != FactKind::VarPointsTo || P1.Kind != FactKind::CallEdge)
      return "this-bind shape";
    const InvokeInfo &Inv = Prog.invoke(InvokeId(P1.A0));
    if (Inv.IsStatic)
      return "this-bind at a static call";
    if (Inv.Base.rawValue() != P0.A0 || P1.A1 != P0.A1)
      return "this-bind receiver premise does not match the edge's caller";
    const MethodInfo &Callee = Prog.method(MethodId(P1.Callee));
    if (Callee.This.rawValue() != T.A0 || T.A1 != P1.CalleeCtx)
      return "this-bind conclusion is not the callee's this in callee ctx";
    if (T.Obj != P0.Obj)
      return "this-bind must preserve the receiver object";
    return "";
  }

  std::string checkParamBind(const FactView &T, const FactView &P0,
                             const FactView &P1, bool Has) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P0.Kind != FactKind::VarPointsTo || P1.Kind != FactKind::CallEdge)
      return "param-bind shape";
    const InvokeInfo &Inv = Prog.invoke(InvokeId(P1.A0));
    if (P1.A1 != P0.A1)
      return "param-bind actual premise context differs from the caller ctx";
    if (T.A1 != P1.CalleeCtx)
      return "param-bind conclusion context differs from the callee ctx";
    if (T.Obj != P0.Obj)
      return "param-bind must preserve the object";
    const MethodInfo &Callee = Prog.method(MethodId(P1.Callee));
    size_t N = std::min(Inv.Actuals.size(), Callee.Formals.size());
    for (size_t I = 0; I < N; ++I)
      if (Inv.Actuals[I].rawValue() == P0.A0 &&
          Callee.Formals[I].rawValue() == T.A0)
        return "";
    return "no formal/actual pair witnesses this binding";
  }

  std::string checkReturnBind(const FactView &T, const FactView &P0,
                              const FactView &P1, bool Has) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P0.Kind != FactKind::VarPointsTo || P1.Kind != FactKind::CallEdge)
      return "return-bind shape";
    const InvokeInfo &Inv = Prog.invoke(InvokeId(P1.A0));
    const MethodInfo &Callee = Prog.method(MethodId(P1.Callee));
    if (!Inv.RetTo.isValid() || Inv.RetTo.rawValue() != T.A0)
      return "return-bind conclusion is not the call's return target";
    if (!Callee.Return.isValid() || Callee.Return.rawValue() != P0.A0)
      return "return-bind premise is not the callee's return variable";
    if (P0.A1 != P1.CalleeCtx || T.A1 != P1.A1)
      return "return-bind contexts do not match the edge";
    if (T.Obj != P0.Obj)
      return "return-bind must preserve the object";
    return "";
  }

  std::string checkThrowLocal(const FactView &T, const FactView &P, bool Has,
                              bool Caught) {
    if (!Has || P.Kind != FactKind::VarPointsTo)
      return "throw premise must be a VarPointsTo";
    if (!objOk(P.Obj))
      return "thrown object id out of range";
    VarId V(P.A0);
    MethodId Raiser = Prog.var(V).Owner;
    bool HasThrow = false;
    for (const ThrowInstr &Th : Prog.method(Raiser).Throws)
      HasThrow |= Th.V == V;
    if (!HasThrow)
      return "no throw instruction witnesses this fact";
    VarId HandlerVar;
    bool Handled = findHandler(Raiser, objType(P.Obj), HandlerVar);
    if (Caught) {
      if (T.Kind != FactKind::VarPointsTo)
        return "catch-bind concludes non-VarPointsTo";
      if (!Handled)
        return "catch-bind but no handler of the method matches";
      bool BindsToHandler = false;
      for (const HandlerInfo &H : Prog.method(Raiser).Handlers)
        if (Prog.isSubtype(objType(P.Obj), H.CatchType) &&
            H.Var.rawValue() == T.A0)
          BindsToHandler = true;
      if (!BindsToHandler)
        return "catch-bind target is not a matching handler variable";
      if (T.A1 != P.A1 || T.Obj != P.Obj)
        return "catch-bind must preserve context and object";
      return "";
    }
    if (T.Kind != FactKind::ThrowPointsTo)
      return "throw-raise concludes non-ThrowPointsTo";
    if (Handled)
      return "throw-raise but a handler of the method matches";
    if (T.A0 != Raiser.rawValue() || T.A1 != P.A1 || T.Obj != P.Obj)
      return "throw-raise conclusion does not match the raising frame";
    return "";
  }

  // --- Cut-shortcut steps (context/CutShortcut.h) -----------------------
  //
  // When a policy is supplied, the recorded step must match its cut plan
  // exactly; without one, the checks fall back to the plan's *structural
  // witness* in the callee body (covered store / returned formal / alloc /
  // load through this), mirroring how the other checkers skip
  // policy-dependent context checks when no policy is given.

  /// Returns the supplied policy's cut plan, or null.  Shortcut steps are
  /// only ever recorded by cut-shortcut policies, so a supplied policy
  /// without a plan is itself an error (reported by callers).
  const CutShortcutPlan *cutPlan() const {
    return Policy ? Policy->cutPlan() : nullptr;
  }

  std::string checkShortcutStore(const FactView &T, const FactView &P0,
                                 const FactView &P1, bool Has) {
    if (T.Kind != FactKind::FieldPointsTo || !Has ||
        P0.Kind != FactKind::VarPointsTo || P1.Kind != FactKind::CallEdge)
      return "shortcut-store shape (needs actual VPT + CallEdge premises)";
    if (Policy && !Policy->cutPlan())
      return "shortcut step under a policy without a cut plan";
    const InvokeInfo &Inv = Prog.invoke(InvokeId(P1.A0));
    if (Inv.IsStatic)
      return "shortcut-store at a static call";
    if (P0.A1 != P1.A1)
      return "shortcut-store actual premise is not in the caller context";
    if (T.Obj != P0.Obj)
      return "shortcut-store must preserve the stored object";
    if (!objOk(T.A0))
      return "shortcut-store receiver object id out of range";
    MethodId Callee(P1.Callee);
    MethodId Resolved = Prog.lookup(objType(T.A0), Inv.Sig);
    if (!Resolved.isValid() || Resolved != Callee)
      return "shortcut-store receiver does not dispatch to the edge callee";
    if (const CutShortcutPlan *Plan = cutPlan()) {
      for (const CutShortcutPlan::StoreCut &SC :
           Plan->method(Callee).StoreCuts)
        if (SC.Fld.rawValue() == T.A1 && SC.FormalIdx < Inv.Actuals.size() &&
            Inv.Actuals[SC.FormalIdx].rawValue() == P0.A0)
          return "";
      return "no store cut in the plan witnesses this shortcut";
    }
    const MethodInfo &CI = Prog.method(Callee);
    for (const StoreInstr &S : CI.Stores)
      if (S.Base == CI.This && S.Fld.rawValue() == T.A1)
        for (size_t I = 0;
             I < CI.Formals.size() && I < Inv.Actuals.size(); ++I)
          if (CI.Formals[I] == S.From && Inv.Actuals[I].rawValue() == P0.A0)
            return "";
    return "no covered store witnesses this shortcut";
  }

  std::string checkShortcutRetArg(const FactView &T, const FactView &P0,
                                  const FactView &P1, bool Has) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P0.Kind != FactKind::VarPointsTo || P1.Kind != FactKind::CallEdge)
      return "shortcut-ret-arg shape (needs actual VPT + CallEdge premises)";
    if (Policy && !Policy->cutPlan())
      return "shortcut step under a policy without a cut plan";
    const InvokeInfo &Inv = Prog.invoke(InvokeId(P1.A0));
    if (!Inv.RetTo.isValid() || Inv.RetTo.rawValue() != T.A0)
      return "shortcut-ret-arg conclusion is not the call's return target";
    if (T.A1 != P1.A1 || P0.A1 != P1.A1)
      return "shortcut-ret-arg must stay in the caller context";
    if (T.Obj != P0.Obj)
      return "shortcut-ret-arg must preserve the object";
    MethodId Callee(P1.Callee);
    if (const CutShortcutPlan *Plan = cutPlan()) {
      const CutShortcutPlan::MethodPlan &MP = Plan->method(Callee);
      if (!MP.RetCut)
        return "shortcut-ret-arg at a callee whose return is not cut";
      for (uint32_t Pos : MP.RetArgs)
        if (Pos < Inv.Actuals.size() &&
            Inv.Actuals[Pos].rawValue() == P0.A0)
          return "";
      return "no ret-arg cut in the plan witnesses this shortcut";
    }
    const MethodInfo &CI = Prog.method(Callee);
    if (!CI.Return.isValid())
      return "shortcut-ret-arg at a callee without a return variable";
    size_t N = std::min(Inv.Actuals.size(), CI.Formals.size());
    for (size_t I = 0; I < N; ++I) {
      if (Inv.Actuals[I].rawValue() != P0.A0)
        continue;
      if (CI.Formals[I] == CI.Return)
        return "";
      for (const MoveInstr &Mv : CI.Moves)
        if (Mv.To == CI.Return && Mv.From == CI.Formals[I])
          return "";
    }
    return "no returned formal witnesses this shortcut";
  }

  std::string checkShortcutRetLoad(const FactView &T, const FactView &P0,
                                   const FactView &P1, bool Has) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P0.Kind != FactKind::FieldPointsTo || P1.Kind != FactKind::CallEdge)
      return "shortcut-ret-load shape (needs FPT + CallEdge premises)";
    if (Policy && !Policy->cutPlan())
      return "shortcut step under a policy without a cut plan";
    const InvokeInfo &Inv = Prog.invoke(InvokeId(P1.A0));
    if (Inv.IsStatic)
      return "shortcut-ret-load at a static call";
    if (!Inv.RetTo.isValid() || Inv.RetTo.rawValue() != T.A0)
      return "shortcut-ret-load conclusion is not the call's return target";
    if (T.A1 != P1.A1)
      return "shortcut-ret-load must stay in the caller context";
    if (T.Obj != P0.Obj)
      return "shortcut-ret-load must preserve the loaded object";
    if (!objOk(P0.A0))
      return "shortcut-ret-load receiver object id out of range";
    MethodId Callee(P1.Callee);
    MethodId Resolved = Prog.lookup(objType(P0.A0), Inv.Sig);
    if (!Resolved.isValid() || Resolved != Callee)
      return "shortcut-ret-load receiver does not dispatch to the callee";
    if (const CutShortcutPlan *Plan = cutPlan()) {
      const CutShortcutPlan::MethodPlan &MP = Plan->method(Callee);
      if (!MP.RetCut)
        return "shortcut-ret-load at a callee whose return is not cut";
      for (FieldId F : MP.RetLoads)
        if (F.rawValue() == P0.A1)
          return "";
      return "no ret-load cut in the plan witnesses this shortcut";
    }
    const MethodInfo &CI = Prog.method(Callee);
    if (!CI.Return.isValid())
      return "shortcut-ret-load at a callee without a return variable";
    for (const LoadInstr &L : CI.Loads)
      if (L.To == CI.Return && L.Base == CI.This &&
          L.Fld.rawValue() == P0.A1)
        return "";
    return "no load of this witnesses this shortcut";
  }

  std::string checkShortcutRetAlloc(const FactView &T, const FactView &P0,
                                    bool Has) {
    if (T.Kind != FactKind::VarPointsTo || !Has ||
        P0.Kind != FactKind::CallEdge)
      return "shortcut-ret-alloc shape (needs a CallEdge premise)";
    if (Policy && !Policy->cutPlan())
      return "shortcut step under a policy without a cut plan";
    const InvokeInfo &Inv = Prog.invoke(InvokeId(P0.A0));
    if (!Inv.RetTo.isValid() || Inv.RetTo.rawValue() != T.A0)
      return "shortcut-ret-alloc conclusion is not the call's return target";
    if (T.A1 != P0.A1)
      return "shortcut-ret-alloc must stay in the caller context";
    if (!objOk(T.Obj))
      return "shortcut-ret-alloc object id out of range";
    HeapId H = Res.objHeap(T.Obj);
    MethodId Callee(P0.Callee);
    if (Policy &&
        Policy->record(H, CtxId(P0.CalleeCtx)) != Res.objHCtx(T.Obj))
      return "shortcut-ret-alloc heap context does not match RECORD";
    if (const CutShortcutPlan *Plan = cutPlan()) {
      const CutShortcutPlan::MethodPlan &MP = Plan->method(Callee);
      if (!MP.RetCut)
        return "shortcut-ret-alloc at a callee whose return is not cut";
      for (HeapId PH : MP.RetAllocs)
        if (PH == H)
          return "";
      return "no ret-alloc cut in the plan witnesses this shortcut";
    }
    const MethodInfo &CI = Prog.method(Callee);
    if (!CI.Return.isValid())
      return "shortcut-ret-alloc at a callee without a return variable";
    for (const AllocInstr &A : CI.Allocs)
      if (A.Var == CI.Return && A.Heap == H)
        return "";
    return "no returned allocation witnesses this shortcut";
  }

  std::string checkEscalate(const FactView &T, const FactView &P0,
                            const FactView &P1, bool Has, bool Caught) {
    if (!Has || P0.Kind != FactKind::ThrowPointsTo ||
        P1.Kind != FactKind::CallEdge)
      return "escalate shape (needs callee TPT + CallEdge premises)";
    if (P0.A0 != P1.Callee || P0.A1 != P1.CalleeCtx)
      return "escalated throw frame is not the edge's callee";
    if (!objOk(P0.Obj))
      return "escalated object id out of range";
    MethodId Caller = Prog.invoke(InvokeId(P1.A0)).InMethod;
    VarId HandlerVar;
    bool Handled = findHandler(Caller, objType(P0.Obj), HandlerVar);
    if (Caught) {
      if (T.Kind != FactKind::VarPointsTo || !Handled)
        return "catch-escalate without a matching caller handler";
      bool BindsToHandler = false;
      for (const HandlerInfo &H : Prog.method(Caller).Handlers)
        if (Prog.isSubtype(objType(P0.Obj), H.CatchType) &&
            H.Var.rawValue() == T.A0)
          BindsToHandler = true;
      if (!BindsToHandler)
        return "catch-escalate target is not a matching handler variable";
      if (T.A1 != P1.A1 || T.Obj != P0.Obj)
        return "catch-escalate must bind in the caller context";
      return "";
    }
    if (T.Kind != FactKind::ThrowPointsTo)
      return "throw-escalate concludes non-ThrowPointsTo";
    if (Handled)
      return "throw-escalate but a caller handler matches";
    if (T.A0 != Caller.rawValue() || T.A1 != P1.A1 || T.Obj != P0.Obj)
      return "throw-escalate conclusion does not match the caller frame";
    return "";
  }

  const Recorder &R;
  const AnalysisResult &Res;
  const Program &Prog;
  ContextPolicy *Policy;
};

std::string describeStep(const Step &S, size_t Idx) {
  return "step " + std::to_string(Idx) + " (" + ruleName(S.rule()) +
         " -> fact " + std::to_string(S.Target) + ")";
}

} // namespace

ValidationResult pt::prov::validateTree(const Recorder &R,
                                        const AnalysisResult &Res,
                                        const DerivationTree &Tree,
                                        ContextPolicy *Policy) {
  ValidationResult VR;
  if (!Tree.Found) {
    VR.Ok = false;
    VR.Error = "tree not found: " + Tree.Error;
    return VR;
  }
  StepChecker Checker(R, Res, Policy);
  // Premises must be concluded by an earlier tree step (well-foundedness).
  std::vector<bool> Concluded(R.numFacts(), false);
  for (const TreeStep &TS : Tree.Steps) {
    Step S{TS.FactId, TS.Prem0, TS.Prem1, static_cast<uint32_t>(TS.R)};
    for (uint32_t P : {TS.Prem0, TS.Prem1}) {
      if (P == InvalidFact)
        continue;
      if (P >= R.numFacts() || !Concluded[P]) {
        VR.Ok = false;
        VR.Error = describeStep(S, TS.StepIdx) +
                   ": premise not concluded by an earlier tree step";
        return VR;
      }
    }
    std::string Err = Checker.check(S);
    if (!Err.empty()) {
      VR.Ok = false;
      VR.Error = describeStep(S, TS.StepIdx) + ": " + Err;
      return VR;
    }
    Concluded[TS.FactId] = true;
    ++VR.CheckedSteps;
  }
  if (Tree.Steps.empty() || Tree.Steps.back().FactId != Tree.Root) {
    VR.Ok = false;
    VR.Error = "tree does not conclude its root fact";
  }
  return VR;
}

ValidationResult pt::prov::validateSampledSteps(const Recorder &R,
                                                const AnalysisResult &Res,
                                                ContextPolicy *Policy,
                                                size_t Stride) {
  ValidationResult VR;
  if (Stride == 0)
    Stride = 1;
  StepChecker Checker(R, Res, Policy);
  size_t N = R.numSteps();
  for (size_t I = 0; I < N; I += Stride) {
    Step S = R.stepAt(I);
    std::string Err = Checker.check(S);
    if (!Err.empty()) {
      VR.Ok = false;
      VR.Error = describeStep(S, I) + ": " + Err;
      return VR;
    }
    ++VR.CheckedSteps;
  }
  return VR;
}
