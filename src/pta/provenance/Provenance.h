//===- pta/provenance/Provenance.h - Derivation provenance ------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-fact derivation provenance: when a run carries a \c Recorder, both
/// fixpoint engines append one 16-byte \c Step per derived fact naming the
/// Figure-2 rule that fired and the (at most two) premise facts it
/// consumed.  Facts are interned into a compact arena of dense ids, so a
/// derivation is a DAG over fact ids and "why does v point to h?" is a
/// backward BFS from the conclusion (\c whyPointsTo).
///
/// Discipline mirrors support/Telemetry.h: a null recorder pointer makes
/// every hook a single-pointer test, and the \c HYBRIDPT_PROVENANCE CMake
/// toggle (default ON) compiles the hooks out entirely — the hot loop pays
/// nothing for a debug knob it does not use.  The arena's bytes are
/// reported through \c memoryBytes() and count against
/// \c SolverOptions::MemoryBudgetBytes like any other solver container.
///
/// Both engines record into the same schema; derivations are *valid*
/// (every step re-checkable against the rule side conditions, see
/// Validate) under either engine at any thread count, though the concrete
/// step streams may differ with schedule.  docs/OBSERVABILITY.md has the
/// query grammar and the cost model.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_PROVENANCE_PROVENANCE_H
#define HYBRIDPT_PTA_PROVENANCE_PROVENANCE_H

#include "support/Ids.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

// Compile-time toggle, same contract as HYBRIDPT_TELEMETRY: the build
// defines HYBRIDPT_PROVENANCE=0/1 (CMake option, default ON); undefined
// means a non-CMake consumer and defaults to enabled.
#if !defined(HYBRIDPT_PROVENANCE) || HYBRIDPT_PROVENANCE
#define HYBRIDPT_PROVENANCE_ENABLED 1
#else
#define HYBRIDPT_PROVENANCE_ENABLED 0
#endif

// Guard for every recording site: one pointer test when compiled in,
// constant-false (dead-code eliminated) when compiled out.
#if HYBRIDPT_PROVENANCE_ENABLED
#define PT_PROV_ACTIVE(P) ((P) != nullptr)
#else
#define PT_PROV_ACTIVE(P) (false)
#endif

namespace pt {

class AnalysisResult;
class ContextPolicy;
class Program;

namespace prov {

/// Sentinel fact id: "no premise" / "not found".
inline constexpr uint32_t InvalidFact = UINT32_MAX;

/// The six derived-fact relations (paper Figure 1 outputs plus the
/// Doop-style METHODTHROWS extension).  Payload packing (see \c Fact):
///   VarPointsTo    A = packPair(var, ctx)          B = obj
///   FieldPointsTo  A = packPair(baseObj, fld)      B = obj
///   StaticPointsTo A = fld                         B = obj
///   ThrowPointsTo  A = packPair(method, ctx)       B = obj
///   Reachable      A = packPair(method, ctx)       B = 0
///   CallEdge       A = packPair(invo, callerCtx)   B via extra word: the
///                  callee/calleeCtx pair is stored packed in B64 (below).
/// Object ids are the run's dense (heap, hctx) ids — identical to the ids
/// in the run's \c AnalysisResult object tables.
enum class FactKind : uint8_t {
  VarPointsTo,
  FieldPointsTo,
  StaticPointsTo,
  ThrowPointsTo,
  Reachable,
  CallEdge,
};

const char *factKindName(FactKind K);

/// Figure-2 rule instances as recorded, one per derivation shape.  The ten
/// telemetry counters are coarser; provenance splits MERGE into its edge
/// consequences (this/param/return binding) and THROW into its four
/// raise/catch/escalate outcomes so each step is independently checkable.
enum class Rule : uint8_t {
  Entry,         ///< Reachable(entry, initialCtx), no premise.
  Seed,          ///< Reachable via warm-start ladder seed, no premise.
  ReachCall,     ///< Reachable(callee, ctx) <- CallEdge.
  Alloc,         ///< VPT(var, ctx, obj) <- Reachable(m, ctx)   [RECORD]
  Move,          ///< VPT(to, ctx, o) <- VPT(from, ctx, o) [+Reachable]
  Cast,          ///< Move filtered by subtype(type(o), target).
  Load,          ///< VPT(to, ctx, o2) <- FPT(bo, f, o2) + VPT(base, ctx, bo)
  Store,         ///< FPT(bo, f, o2) <- VPT(from, ctx, o2) + VPT(base, ctx, bo)
  StaticLoad,    ///< VPT(to, ctx, o) <- SPT(f, o) [+Reachable]
  StaticStore,   ///< SPT(f, o) <- VPT(from, ctx, o) [+Reachable]
  VCall,         ///< CallEdge <- VPT(base, ctx, recv)          [MERGE]
  SCall,         ///< CallEdge <- Reachable(caller, ctx)  [MERGESTATIC]
  ThisBind,      ///< VPT(this, calleeCtx, recv) <- VPT(base,..) + CallEdge
  ParamBind,     ///< VPT(formal, calleeCtx, o) <- VPT(actual,..) + CallEdge
  ReturnBind,    ///< VPT(retTo, callerCtx, o) <- VPT(ret,..) + CallEdge
  ThrowRaise,    ///< TPT(m, ctx, o) <- VPT(v, ctx, o), uncaught in m.
  CatchBind,     ///< VPT(hvar, ctx, o) <- VPT(v, ctx, o), handler matches.
  ThrowEscalate, ///< TPT(caller,..) <- TPT(callee,..) + CallEdge, uncaught.
  CatchEscalate, ///< VPT(hvar,..) <- TPT(callee,..) + CallEdge, caught.
  // Cut-shortcut derivations (context/CutShortcut.h): per-call-edge
  // shortcut edges replacing cut store/return flows.
  ShortcutStore,    ///< FPT(recv, f, o) <- VPT(actual,..) + CallEdge.
  ShortcutRetArg,   ///< VPT(retTo,.., o) <- VPT(actual,..) + CallEdge.
  ShortcutRetLoad,  ///< VPT(retTo,.., o) <- FPT(recv, f, o) + CallEdge.
  ShortcutRetAlloc, ///< VPT(retTo,.., (h, RECORD)) <- CallEdge.
  Sanitize,         ///< Move filtered by TaintTag(site(o)) == 0.
  NumRules,
};

const char *ruleName(Rule R);

inline constexpr size_t numRules() { return static_cast<size_t>(Rule::NumRules); }

/// One interned fact.  \c B64 widens the payload for CallEdge (which needs
/// four words); every other kind stores its object id there.
struct Fact {
  uint64_t A = 0;
  uint64_t B64 = 0;
  FactKind Kind = FactKind::VarPointsTo;
};

/// One derivation step: 16 bytes.  \c RuleWord packs the rule in the low 8
/// bits (high bits reserved).  \c Prem1 is \c InvalidFact for one-premise
/// rules; \c Prem0 too for axioms (Entry/Seed).
struct Step {
  uint32_t Target;
  uint32_t Prem0;
  uint32_t Prem1;
  uint32_t RuleWord;

  Rule rule() const { return static_cast<Rule>(RuleWord & 0xff); }
};
static_assert(sizeof(Step) == 16, "derivation steps must stay compact");

/// Append-only derivation arena shared by one solver run.  Thread-safe:
/// the summary engine's partitions record concurrently under one internal
/// mutex (provenance is a debug mode; contention is acceptable), and
/// \c memoryBytes() reads an atomic so budget polls never take the lock.
class Recorder {
public:
  Recorder() = default;
  Recorder(const Recorder &) = delete;
  Recorder &operator=(const Recorder &) = delete;

  /// Interns (\p Kind, \p A, \p B64) and returns its dense fact id.
  uint32_t internFact(FactKind Kind, uint64_t A, uint64_t B64);

  /// Looks up a fact without interning; \c InvalidFact when absent.
  uint32_t findFact(FactKind Kind, uint64_t A, uint64_t B64) const;

  /// Appends one derivation step concluding \p Target.
  void step(uint32_t Target, Rule R, uint32_t P0 = InvalidFact,
            uint32_t P1 = InvalidFact);

  /// Interns the fact and records a step for it in one call.
  uint32_t recordFact(FactKind Kind, uint64_t A, uint64_t B64, Rule R,
                      uint32_t P0 = InvalidFact, uint32_t P1 = InvalidFact) {
    uint32_t Id = internFact(Kind, A, B64);
    step(Id, R, P0, P1);
    return Id;
  }

  /// Drops every fact and step.  Fact payloads embed per-run dense object
  /// ids, so a recorder reused across runs (ladder rungs, bench
  /// repetitions) must be cleared between them — mixed runs would produce
  /// derivations citing objects from a different result's tables.
  void clear();

  // --- Post-run reads (engine quiesced, or under the same lock) ---

  size_t numFacts() const;
  size_t numSteps() const;
  Fact fact(uint32_t Id) const;
  Step stepAt(size_t Idx) const;

  /// The lowest-indexed step concluding \p FactId; \c InvalidFact-pattern
  /// (== numSteps()) sentinel is avoided by returning UINT32_MAX when the
  /// fact was interned but never concluded by a step.
  uint32_t firstStepOf(uint32_t FactId) const;

  /// Arena bytes (facts + steps + index); lock-free, safe from guard polls.
  size_t memoryBytes() const {
    return BytesA.load(std::memory_order_relaxed);
  }

private:
  uint32_t internFactLocked(FactKind Kind, uint64_t A, uint64_t B64);
  void refreshBytesLocked();

  struct FactRec {
    uint64_t A;
    uint64_t B64;
    uint32_t Next; ///< Hash-chain link for exact dedup.
    uint32_t FirstStep = UINT32_MAX;
    FactKind Kind;
  };

  mutable std::mutex Mu;
  std::vector<FactRec> Facts;
  std::vector<Step> Steps;
  /// Power-of-two bucket array: hash -> head index into Facts.
  std::vector<uint32_t> Buckets;
  std::atomic<size_t> BytesA{0};
};

// --- Fact payload helpers ---------------------------------------------------

uint32_t varPointsTo(Recorder &R, VarId V, CtxId Ctx, uint32_t Obj);
uint32_t fieldPointsTo(Recorder &R, uint32_t BaseObj, FieldId F, uint32_t Obj);
uint32_t staticPointsTo(Recorder &R, FieldId F, uint32_t Obj);
uint32_t throwPointsTo(Recorder &R, MethodId M, CtxId Ctx, uint32_t Obj);
uint32_t reachableFact(Recorder &R, MethodId M, CtxId Ctx);
uint32_t callEdgeFact(Recorder &R, InvokeId I, CtxId CallerCtx, MethodId Callee,
                      CtxId CalleeCtx);

// --- Query API --------------------------------------------------------------

/// One node of a rendered derivation tree.
struct TreeStep {
  uint32_t FactId = InvalidFact;
  uint32_t StepIdx = UINT32_MAX; ///< Index into the arena's step stream.
  Rule R = Rule::Entry;
  uint32_t Prem0 = InvalidFact;
  uint32_t Prem1 = InvalidFact;
  uint32_t Depth = 0; ///< Distance from the root conclusion.
};

/// A minimal derivation of one conclusion: the backward-BFS closure of the
/// root's first-recorded step, premises before conclusions.
struct DerivationTree {
  bool Found = false;
  uint32_t Root = InvalidFact;
  /// Steps in leaves-first (topological) order; the root's step is last.
  std::vector<TreeStep> Steps;
  std::string Error; ///< Why Found is false ("no such fact", ...).
};

/// Minimal derivation of \p FactId via backward BFS over first steps.
DerivationTree deriveFact(const Recorder &R, uint32_t FactId);

/// Why does (\p V, \p Ctx) point to an object allocated at \p Heap?  Scans
/// the interned VarPointsTo facts for the first matching (any heap context)
/// and derives it.  \p Ctx may be invalid to accept any context.
DerivationTree whyPointsTo(const Recorder &R, const AnalysisResult &Res,
                           VarId V, CtxId Ctx, HeapId Heap);

/// One attribution row of a blame profile.
struct BlameRow {
  std::string Key;
  uint64_t Steps = 0;
  uint64_t Bytes = 0; ///< Steps * sizeof(Step): arena bytes attributed.
};

/// Cost attribution over the whole arena: derivation-step counts bucketed
/// by rule, conclusion method, conclusion allocation site, and method-
/// context depth, each truncated to the top \p TopK rows (descending).
struct BlameReport {
  std::vector<BlameRow> ByRule;
  std::vector<BlameRow> ByMethod;
  std::vector<BlameRow> ByAllocSite;
  std::vector<BlameRow> ByCtxDepth;
  uint64_t TotalSteps = 0;
  uint64_t TotalFacts = 0;
  uint64_t ArenaBytes = 0;
};

BlameReport blame(const Recorder &R, const AnalysisResult &Res, size_t TopK);

// --- Validation (Validate.cpp) ----------------------------------------------

/// Outcome of re-checking derivation steps against the Figure-2 side
/// conditions.
struct ValidationResult {
  bool Ok = true;
  size_t CheckedSteps = 0;
  std::string Error; ///< First failing step, human-readable.
};

/// Re-checks every step of \p Tree: premises structurally consistent with
/// the conclusion, a witnessing instruction exists in the program, type
/// filters hold.  When \p Policy is non-null the context side conditions
/// (RECORD / MERGE / MERGESTATIC outputs) are re-computed and compared too.
ValidationResult validateTree(const Recorder &R, const AnalysisResult &Res,
                              const DerivationTree &Tree,
                              ContextPolicy *Policy = nullptr);

/// Replays every \p Stride-th step of the whole arena through the step
/// checker (stride 1 = all).  The fuzz axis drives this.
ValidationResult validateSampledSteps(const Recorder &R,
                                      const AnalysisResult &Res,
                                      ContextPolicy *Policy, size_t Stride);

// --- Rendering (Render.cpp) -------------------------------------------------

/// Renders one fact as human-readable text, e.g.
/// "VarPointsTo(main::x, [], new A@main/3)".
std::string formatFact(const Recorder &R, const AnalysisResult &Res,
                       uint32_t FactId);

/// Multi-line indented text rendering of a derivation tree.
std::string renderTreeText(const Recorder &R, const AnalysisResult &Res,
                           const DerivationTree &Tree);

/// JSON object {"found":..,"root":..,"steps":[...]}.
std::string renderTreeJson(const Recorder &R, const AnalysisResult &Res,
                           const DerivationTree &Tree);

/// Graphviz digraph of the derivation DAG (facts as nodes, steps as edges
/// labeled with their rule), same dialect as pta/DotExport.
std::string renderTreeDot(const Recorder &R, const AnalysisResult &Res,
                          const DerivationTree &Tree);

/// JSON object for one cell's blame profile (see docs/OBSERVABILITY.md for
/// the schema rendered by tools/trace_summary.py).
std::string renderBlameJson(const BlameReport &B);

} // namespace prov
} // namespace pt

#endif // HYBRIDPT_PTA_PROVENANCE_PROVENANCE_H
