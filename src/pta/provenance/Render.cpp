//===- pta/provenance/Render.cpp - Derivation-tree rendering -------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text / JSON / Graphviz renderers for derivation trees and the JSON shape
/// of blame profiles (consumed by tools/trace_summary.py and folded into
/// BENCH cells).  The DOT output is the same plain dialect as
/// pta/DotExport: facts as boxes, steps as rule-labeled edges.
///
//===----------------------------------------------------------------------===//

#include "pta/provenance/Provenance.h"

#include "context/ContextTable.h"
#include "context/Policy.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "pta/Trace.h"
#include "support/Hashing.h"

#include <sstream>

using namespace pt;
using namespace pt::prov;

namespace {

std::string formatObj(const AnalysisResult &Res, uint32_t Obj) {
  const Program &Prog = Res.program();
  if (Obj >= Res.numObjects())
    return "obj#" + std::to_string(Obj);
  const HeapInfo &H = Prog.heap(Res.objHeap(Obj));
  std::string Out = Prog.text(H.Name);
  HCtxId HC = Res.objHCtx(Obj);
  if (HC.isValid() && Res.policy().hctxTable().arity(HC) > 0)
    Out += formatContext(Res.policy().hctxTable(), HC, Prog);
  return Out;
}

std::string formatVar(const Program &Prog, uint32_t RawVar) {
  VarId V(RawVar);
  if (!V.isValid() || V.index() >= Prog.numVars())
    return "var#" + std::to_string(RawVar);
  const VarInfo &Info = Prog.var(V);
  return Prog.qualifiedName(Info.Owner) + "::" + Prog.text(Info.Name);
}

std::string formatCtx(const AnalysisResult &Res, uint32_t RawCtx) {
  CtxId Ctx(RawCtx);
  const auto &Tab = Res.policy().ctxTable();
  if (!Ctx.isValid() || Ctx.index() >= Tab.size())
    return "ctx#" + std::to_string(RawCtx);
  return formatContext(Tab, Ctx, Res.program());
}

std::string formatMethod(const Program &Prog, uint32_t RawM) {
  MethodId M(RawM);
  if (!M.isValid() || M.index() >= Prog.numMethods())
    return "method#" + std::to_string(RawM);
  return Prog.qualifiedName(M);
}

} // namespace

std::string pt::prov::formatFact(const Recorder &R, const AnalysisResult &Res,
                                 uint32_t FactId) {
  if (FactId == InvalidFact || FactId >= R.numFacts())
    return "<invalid fact>";
  const Program &Prog = Res.program();
  Fact F = R.fact(FactId);
  std::string Out = factKindName(F.Kind);
  Out += "(";
  switch (F.Kind) {
  case FactKind::VarPointsTo:
    Out += formatVar(Prog, unpackHi(F.A)) + ", " +
           formatCtx(Res, unpackLo(F.A)) + ", " +
           formatObj(Res, static_cast<uint32_t>(F.B64));
    break;
  case FactKind::FieldPointsTo:
    Out += formatObj(Res, unpackHi(F.A)) + "." +
           Prog.text(Prog.field(FieldId(unpackLo(F.A))).Name) + ", " +
           formatObj(Res, static_cast<uint32_t>(F.B64));
    break;
  case FactKind::StaticPointsTo:
    Out += Prog.text(Prog.field(FieldId(static_cast<uint32_t>(F.A))).Name) +
           ", " + formatObj(Res, static_cast<uint32_t>(F.B64));
    break;
  case FactKind::ThrowPointsTo:
    Out += formatMethod(Prog, unpackHi(F.A)) + ", " +
           formatCtx(Res, unpackLo(F.A)) + ", " +
           formatObj(Res, static_cast<uint32_t>(F.B64));
    break;
  case FactKind::Reachable:
    Out += formatMethod(Prog, unpackHi(F.A)) + ", " +
           formatCtx(Res, unpackLo(F.A));
    break;
  case FactKind::CallEdge:
    Out += Prog.text(Prog.invoke(InvokeId(unpackHi(F.A))).Name) + ", " +
           formatCtx(Res, unpackLo(F.A)) + " -> " +
           formatMethod(Prog, unpackHi(F.B64)) + ", " +
           formatCtx(Res, unpackLo(F.B64));
    break;
  }
  Out += ")";
  return Out;
}

std::string pt::prov::renderTreeText(const Recorder &R,
                                     const AnalysisResult &Res,
                                     const DerivationTree &Tree) {
  std::ostringstream OS;
  if (!Tree.Found) {
    OS << "no derivation: " << Tree.Error << "\n";
    return OS.str();
  }
  OS << "derivation of " << formatFact(R, Res, Tree.Root) << " ("
     << Tree.Steps.size() << " steps)\n";
  // Render root-first, indenting by BFS depth, so the conclusion reads at
  // the top and its support fans out below.
  for (auto It = Tree.Steps.rbegin(); It != Tree.Steps.rend(); ++It) {
    const TreeStep &TS = *It;
    OS << std::string(2 * TS.Depth, ' ') << "- [" << ruleName(TS.R) << "] "
       << formatFact(R, Res, TS.FactId);
    if (TS.Prem0 != InvalidFact || TS.Prem1 != InvalidFact) {
      OS << "  <=";
      if (TS.Prem0 != InvalidFact)
        OS << " #" << TS.Prem0;
      if (TS.Prem1 != InvalidFact)
        OS << " #" << TS.Prem1;
    }
    OS << "  (fact #" << TS.FactId << ")\n";
  }
  return OS.str();
}

std::string pt::prov::renderTreeJson(const Recorder &R,
                                     const AnalysisResult &Res,
                                     const DerivationTree &Tree) {
  std::ostringstream OS;
  OS << "{\"found\":" << (Tree.Found ? "true" : "false");
  if (!Tree.Found) {
    OS << ",\"error\":\"" << trace::jsonEscape(Tree.Error) << "\"}";
    return OS.str();
  }
  OS << ",\"root\":" << Tree.Root << ",\"steps\":[";
  bool First = true;
  for (const TreeStep &TS : Tree.Steps) {
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"fact\":" << TS.FactId << ",\"rule\":\"" << ruleName(TS.R)
       << "\",\"text\":\"" << trace::jsonEscape(formatFact(R, Res, TS.FactId))
       << "\",\"premises\":[";
    bool FirstP = true;
    for (uint32_t P : {TS.Prem0, TS.Prem1}) {
      if (P == InvalidFact)
        continue;
      if (!FirstP)
        OS << ",";
      FirstP = false;
      OS << P;
    }
    OS << "],\"depth\":" << TS.Depth << "}";
  }
  OS << "]}";
  return OS.str();
}

std::string pt::prov::renderTreeDot(const Recorder &R,
                                    const AnalysisResult &Res,
                                    const DerivationTree &Tree) {
  std::ostringstream OS;
  OS << "digraph derivation {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontsize=10];\n";
  if (!Tree.Found) {
    OS << "  err [label=\"no derivation\"];\n}\n";
    return OS.str();
  }
  auto Escape = [](std::string S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    return Out;
  };
  for (const TreeStep &TS : Tree.Steps) {
    OS << "  f" << TS.FactId << " [label=\""
       << Escape(formatFact(R, Res, TS.FactId)) << "\"";
    if (TS.FactId == Tree.Root)
      OS << ", style=bold";
    OS << "];\n";
    for (uint32_t P : {TS.Prem0, TS.Prem1}) {
      if (P == InvalidFact)
        continue;
      OS << "  f" << P << " -> f" << TS.FactId << " [label=\""
         << ruleName(TS.R) << "\"];\n";
    }
  }
  OS << "}\n";
  return OS.str();
}

namespace {

void writeRows(std::ostringstream &OS, const char *Key,
               const std::vector<BlameRow> &Rows, bool &FirstSection) {
  if (!FirstSection)
    OS << ",";
  FirstSection = false;
  OS << "\"" << Key << "\":[";
  bool First = true;
  for (const BlameRow &Row : Rows) {
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"key\":\"" << trace::jsonEscape(Row.Key)
       << "\",\"steps\":" << Row.Steps << ",\"bytes\":" << Row.Bytes << "}";
  }
  OS << "]";
}

} // namespace

std::string pt::prov::renderBlameJson(const BlameReport &B) {
  std::ostringstream OS;
  OS << "{\"total_steps\":" << B.TotalSteps
     << ",\"total_facts\":" << B.TotalFacts
     << ",\"arena_bytes\":" << B.ArenaBytes << ",";
  bool First = true;
  writeRows(OS, "by_rule", B.ByRule, First);
  writeRows(OS, "by_method", B.ByMethod, First);
  writeRows(OS, "by_alloc_site", B.ByAllocSite, First);
  writeRows(OS, "by_ctx_depth", B.ByCtxDepth, First);
  OS << "}";
  return OS.str();
}
