//===- pta/provenance/Provenance.cpp - Derivation arena and queries ------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/provenance/Provenance.h"

#include "context/ContextTable.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace pt;
using namespace pt::prov;

const char *pt::prov::factKindName(FactKind K) {
  switch (K) {
  case FactKind::VarPointsTo:
    return "VarPointsTo";
  case FactKind::FieldPointsTo:
    return "FieldPointsTo";
  case FactKind::StaticPointsTo:
    return "StaticPointsTo";
  case FactKind::ThrowPointsTo:
    return "ThrowPointsTo";
  case FactKind::Reachable:
    return "Reachable";
  case FactKind::CallEdge:
    return "CallEdge";
  }
  return "?";
}

const char *pt::prov::ruleName(Rule R) {
  switch (R) {
  case Rule::Entry:
    return "entry";
  case Rule::Seed:
    return "seed";
  case Rule::ReachCall:
    return "reach-call";
  case Rule::Alloc:
    return "alloc";
  case Rule::Move:
    return "move";
  case Rule::Cast:
    return "cast";
  case Rule::Load:
    return "load";
  case Rule::Store:
    return "store";
  case Rule::StaticLoad:
    return "static-load";
  case Rule::StaticStore:
    return "static-store";
  case Rule::VCall:
    return "vcall";
  case Rule::SCall:
    return "scall";
  case Rule::ThisBind:
    return "this-bind";
  case Rule::ParamBind:
    return "param-bind";
  case Rule::ReturnBind:
    return "return-bind";
  case Rule::ThrowRaise:
    return "throw-raise";
  case Rule::CatchBind:
    return "catch-bind";
  case Rule::ThrowEscalate:
    return "throw-escalate";
  case Rule::CatchEscalate:
    return "catch-escalate";
  case Rule::ShortcutStore:
    return "shortcut-store";
  case Rule::ShortcutRetArg:
    return "shortcut-ret-arg";
  case Rule::ShortcutRetLoad:
    return "shortcut-ret-load";
  case Rule::ShortcutRetAlloc:
    return "shortcut-ret-alloc";
  case Rule::Sanitize:
    return "sanitize";
  case Rule::NumRules:
    break;
  }
  return "?";
}

namespace {

uint64_t factHash(FactKind Kind, uint64_t A, uint64_t B64) {
  return hashCombine(hashCombine(mix64(static_cast<uint64_t>(Kind)), A), B64);
}

} // namespace

uint32_t Recorder::internFactLocked(FactKind Kind, uint64_t A, uint64_t B64) {
  if (Buckets.empty())
    Buckets.assign(1024, UINT32_MAX);
  uint64_t H = factHash(Kind, A, B64);
  size_t Slot = H & (Buckets.size() - 1);
  for (uint32_t I = Buckets[Slot]; I != UINT32_MAX; I = Facts[I].Next) {
    const FactRec &F = Facts[I];
    if (F.Kind == Kind && F.A == A && F.B64 == B64)
      return I;
  }
  uint32_t Id = static_cast<uint32_t>(Facts.size());
  Facts.push_back(FactRec{A, B64, Buckets[Slot], UINT32_MAX, Kind});
  Buckets[Slot] = Id;
  // Grow at load factor 1: rechain everything into a doubled table.
  if (Facts.size() > Buckets.size()) {
    size_t NewSize = Buckets.size() * 2;
    Buckets.assign(NewSize, UINT32_MAX);
    for (uint32_t I = 0; I < Facts.size(); ++I) {
      size_t S = factHash(Facts[I].Kind, Facts[I].A, Facts[I].B64) &
                 (NewSize - 1);
      Facts[I].Next = Buckets[S];
      Buckets[S] = I;
    }
  }
  refreshBytesLocked();
  return Id;
}

void Recorder::refreshBytesLocked() {
  size_t B = Facts.capacity() * sizeof(FactRec) +
             Steps.capacity() * sizeof(Step) +
             Buckets.capacity() * sizeof(uint32_t);
  BytesA.store(B, std::memory_order_relaxed);
}

uint32_t Recorder::internFact(FactKind Kind, uint64_t A, uint64_t B64) {
  std::lock_guard<std::mutex> Lock(Mu);
  return internFactLocked(Kind, A, B64);
}

uint32_t Recorder::findFact(FactKind Kind, uint64_t A, uint64_t B64) const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Buckets.empty())
    return InvalidFact;
  uint64_t H = factHash(Kind, A, B64);
  for (uint32_t I = Buckets[H & (Buckets.size() - 1)]; I != UINT32_MAX;
       I = Facts[I].Next) {
    const FactRec &F = Facts[I];
    if (F.Kind == Kind && F.A == A && F.B64 == B64)
      return I;
  }
  return InvalidFact;
}

void Recorder::step(uint32_t Target, Rule R, uint32_t P0, uint32_t P1) {
  std::lock_guard<std::mutex> Lock(Mu);
  assert(Target < Facts.size() && "step targets an uninterned fact");
  uint32_t Idx = static_cast<uint32_t>(Steps.size());
  Steps.push_back(Step{Target, P0, P1, static_cast<uint32_t>(R)});
  if (Facts[Target].FirstStep == UINT32_MAX)
    Facts[Target].FirstStep = Idx;
  refreshBytesLocked();
}

size_t Recorder::numFacts() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Facts.size();
}

size_t Recorder::numSteps() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Steps.size();
}

Fact Recorder::fact(uint32_t Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const FactRec &F = Facts[Id];
  return Fact{F.A, F.B64, F.Kind};
}

Step Recorder::stepAt(size_t Idx) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Steps[Idx];
}

uint32_t Recorder::firstStepOf(uint32_t FactId) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Facts[FactId].FirstStep;
}

void Recorder::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Facts.clear();
  Facts.shrink_to_fit();
  Steps.clear();
  Steps.shrink_to_fit();
  Buckets.clear();
  Buckets.shrink_to_fit();
  refreshBytesLocked();
}

// --- Fact payload helpers ---------------------------------------------------

uint32_t pt::prov::varPointsTo(Recorder &R, VarId V, CtxId Ctx, uint32_t Obj) {
  return R.internFact(FactKind::VarPointsTo,
                      packPair(V.rawValue(), Ctx.rawValue()), Obj);
}

uint32_t pt::prov::fieldPointsTo(Recorder &R, uint32_t BaseObj, FieldId F,
                                 uint32_t Obj) {
  return R.internFact(FactKind::FieldPointsTo,
                      packPair(BaseObj, F.rawValue()), Obj);
}

uint32_t pt::prov::staticPointsTo(Recorder &R, FieldId F, uint32_t Obj) {
  return R.internFact(FactKind::StaticPointsTo, F.rawValue(), Obj);
}

uint32_t pt::prov::throwPointsTo(Recorder &R, MethodId M, CtxId Ctx,
                                 uint32_t Obj) {
  return R.internFact(FactKind::ThrowPointsTo,
                      packPair(M.rawValue(), Ctx.rawValue()), Obj);
}

uint32_t pt::prov::reachableFact(Recorder &R, MethodId M, CtxId Ctx) {
  return R.internFact(FactKind::Reachable,
                      packPair(M.rawValue(), Ctx.rawValue()), 0);
}

uint32_t pt::prov::callEdgeFact(Recorder &R, InvokeId I, CtxId CallerCtx,
                                MethodId Callee, CtxId CalleeCtx) {
  return R.internFact(FactKind::CallEdge,
                      packPair(I.rawValue(), CallerCtx.rawValue()),
                      packPair(Callee.rawValue(), CalleeCtx.rawValue()));
}

// --- Queries ----------------------------------------------------------------

DerivationTree pt::prov::deriveFact(const Recorder &R, uint32_t FactId) {
  DerivationTree Tree;
  Tree.Root = FactId;
  if (FactId == InvalidFact || FactId >= R.numFacts()) {
    Tree.Error = "no such fact";
    return Tree;
  }
  // Backward walk over each fact's *first-recorded* step.  Steps are only
  // recorded after their premises exist, and a fact's first step never
  // (transitively) cites a fact first derived from it, so the first-step
  // graph is a DAG; an iterative DFS post-order yields premises strictly
  // before conclusions.  Step indices are *not* globally monotone along
  // the walk (a Reachable step may cite a CallEdge fact whose own step
  // lands a few entries later), which is why this is a topological emit
  // rather than a sort by arena position.
  // States: 0 unseen, 1 on the current DFS path, 2 emitted.
  std::vector<uint8_t> State(R.numFacts(), 0);
  std::vector<uint32_t> Depth(R.numFacts(), 0);
  struct Frame {
    uint32_t F;
    bool Post;
  };
  std::vector<Frame> Stack{{FactId, false}};
  while (!Stack.empty()) {
    Frame Fr = Stack.back();
    Stack.pop_back();
    uint32_t SIdx = R.firstStepOf(Fr.F);
    if (SIdx == UINT32_MAX) {
      // Interned but never concluded: a premise cited before its own step
      // would violate record order; treat as corrupt arena.
      Tree.Error = "fact has no derivation step";
      return Tree;
    }
    Step S = R.stepAt(SIdx);
    if (Fr.Post) {
      State[Fr.F] = 2;
      TreeStep TS;
      TS.FactId = Fr.F;
      TS.StepIdx = SIdx;
      TS.R = S.rule();
      TS.Prem0 = S.Prem0;
      TS.Prem1 = S.Prem1;
      TS.Depth = Depth[Fr.F];
      Tree.Steps.push_back(TS);
      continue;
    }
    if (State[Fr.F] == 2)
      continue; // Shared premise already emitted via another conclusion.
    if (State[Fr.F] == 1) {
      Tree.Error = "derivation arena contains a cyclic justification";
      return Tree;
    }
    State[Fr.F] = 1;
    Stack.push_back({Fr.F, true});
    for (uint32_t P : {S.Prem1, S.Prem0}) {
      if (P == InvalidFact || State[P] == 2)
        continue;
      if (P >= R.numFacts()) {
        Tree.Error = "premise fact id out of range";
        return Tree;
      }
      Depth[P] = Depth[Fr.F] + 1;
      Stack.push_back({P, false});
    }
  }
  Tree.Found = true;
  return Tree;
}

DerivationTree pt::prov::whyPointsTo(const Recorder &R,
                                     const AnalysisResult &Res, VarId V,
                                     CtxId Ctx, HeapId Heap) {
  // Find a dense object id whose heap site matches, then look the
  // VarPointsTo fact up in the arena.  Any heap context is accepted; when
  // Ctx is invalid any method context matches too.
  size_t NumFacts = R.numFacts();
  for (uint32_t Id = 0; Id < NumFacts; ++Id) {
    Fact F = R.fact(Id);
    if (F.Kind != FactKind::VarPointsTo)
      continue;
    if (unpackHi(F.A) != V.rawValue())
      continue;
    if (Ctx.isValid() && unpackLo(F.A) != Ctx.rawValue())
      continue;
    uint32_t Obj = static_cast<uint32_t>(F.B64);
    if (Obj >= Res.numObjects() || Res.objHeap(Obj) != Heap)
      continue;
    return deriveFact(R, Id);
  }
  DerivationTree Tree;
  Tree.Error = "no recorded VarPointsTo fact matches the query";
  return Tree;
}

// --- Blame ------------------------------------------------------------------

namespace {

void topK(std::map<std::string, uint64_t> &Counts, size_t K,
          std::vector<BlameRow> &Out) {
  std::vector<BlameRow> Rows;
  Rows.reserve(Counts.size());
  for (auto &[Key, N] : Counts)
    Rows.push_back(BlameRow{Key, N, N * sizeof(Step)});
  std::sort(Rows.begin(), Rows.end(), [](const BlameRow &A, const BlameRow &B) {
    if (A.Steps != B.Steps)
      return A.Steps > B.Steps;
    return A.Key < B.Key;
  });
  if (Rows.size() > K)
    Rows.resize(K);
  Out = std::move(Rows);
}

/// The method a conclusion is attributed to: the owner of the concluded
/// entity (var owner, throwing method, base-object alloc method, invoking
/// method); static slots have no owner.
MethodId blameMethod(const Program &Prog, const Fact &F) {
  switch (F.Kind) {
  case FactKind::VarPointsTo:
    return Prog.var(VarId(unpackHi(F.A))).Owner;
  case FactKind::FieldPointsTo:
    return MethodId::invalid(); // Resolved via the base object by caller.
  case FactKind::StaticPointsTo:
    return MethodId::invalid();
  case FactKind::ThrowPointsTo:
  case FactKind::Reachable:
    return MethodId(unpackHi(F.A));
  case FactKind::CallEdge:
    return Prog.invoke(InvokeId(unpackHi(F.A))).InMethod;
  }
  return MethodId::invalid();
}

} // namespace

BlameReport pt::prov::blame(const Recorder &R, const AnalysisResult &Res,
                            size_t TopK) {
  const Program &Prog = Res.program();
  const ContextPolicy &Policy = Res.policy();
  BlameReport Rep;
  Rep.TotalFacts = R.numFacts();
  Rep.TotalSteps = R.numSteps();
  Rep.ArenaBytes = R.memoryBytes();
  std::map<std::string, uint64_t> ByRule, ByMethod, ByAlloc, ByDepth;
  size_t N = R.numSteps();
  for (size_t I = 0; I < N; ++I) {
    Step S = R.stepAt(I);
    Fact F = R.fact(S.Target);
    ByRule[ruleName(S.rule())]++;

    MethodId M = blameMethod(Prog, F);
    if (F.Kind == FactKind::FieldPointsTo) {
      uint32_t BaseObj = unpackHi(F.A);
      if (BaseObj < Res.numObjects())
        M = Prog.heap(Res.objHeap(BaseObj)).InMethod;
    }
    ByMethod[M.isValid() ? Prog.qualifiedName(M) : "(static)"]++;

    // Allocation site of the concluded object, when the fact carries one.
    if (F.Kind != FactKind::Reachable && F.Kind != FactKind::CallEdge) {
      uint32_t Obj = static_cast<uint32_t>(F.B64);
      if (Obj < Res.numObjects()) {
        const HeapInfo &H = Prog.heap(Res.objHeap(Obj));
        ByAlloc[Prog.text(H.Name)]++;
      }
    }

    // Method-context depth: count non-star slots of the conclusion's ctx.
    if (F.Kind == FactKind::VarPointsTo || F.Kind == FactKind::ThrowPointsTo ||
        F.Kind == FactKind::Reachable) {
      CtxId Ctx(unpackLo(F.A));
      uint32_t Depth = 0;
      const auto &Tab = Policy.ctxTable();
      if (Ctx.isValid() && Ctx.index() < Tab.size()) {
        for (uint32_t Slot = 0; Slot < Tab.arity(Ctx); ++Slot)
          if (Tab.elem(Ctx, Slot).raw() != ContextElem::star().raw())
            ++Depth;
      }
      ByDepth["depth-" + std::to_string(Depth)]++;
    }
  }
  topK(ByRule, TopK, Rep.ByRule);
  topK(ByMethod, TopK, Rep.ByMethod);
  topK(ByAlloc, TopK, Rep.ByAllocSite);
  topK(ByDepth, TopK, Rep.ByCtxDepth);
  return Rep;
}
