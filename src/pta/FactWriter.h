//===- pta/FactWriter.h - Doop-style relation export ------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes analysis results to delimited text files, one per relation,
/// the way Doop materializes its output database.  Rows use human-readable
/// entity names and rendered contexts, so downstream tooling (or a
/// spreadsheet) can consume them without this library.
///
/// Files written into the target directory:
///
///   VarPointsTo.facts      var <TAB> ctx <TAB> heap <TAB> hctx
///   CallGraphEdge.facts    invo <TAB> callerCtx <TAB> callee <TAB> ctx
///   FieldPointsTo.facts    baseHeap <TAB> baseHCtx <TAB> field
///                          <TAB> heap <TAB> hctx
///   StaticFieldPointsTo.facts  field <TAB> heap <TAB> hctx
///   MethodThrows.facts     method <TAB> ctx <TAB> heap <TAB> hctx
///   Reachable.facts        method <TAB> ctx
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_FACTWRITER_H
#define HYBRIDPT_PTA_FACTWRITER_H

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pt {

class AnalysisResult;

/// Writes every relation of \p Result into \p Directory (created if
/// needed).  Returns the written file paths, or an empty vector with
/// \p Error filled on failure.
std::vector<std::string> writeFacts(const AnalysisResult &Result,
                                    std::string_view Directory,
                                    std::string &Error);

/// Streams one relation in .facts format (testable without a filesystem).
void writeVarPointsTo(const AnalysisResult &Result, std::ostream &OS);
void writeCallGraph(const AnalysisResult &Result, std::ostream &OS);
void writeFieldPointsTo(const AnalysisResult &Result, std::ostream &OS);
void writeStaticFieldPointsTo(const AnalysisResult &Result,
                              std::ostream &OS);
void writeMethodThrows(const AnalysisResult &Result, std::ostream &OS);
void writeReachable(const AnalysisResult &Result, std::ostream &OS);

} // namespace pt

#endif // HYBRIDPT_PTA_FACTWRITER_H
