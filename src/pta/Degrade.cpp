//===- pta/Degrade.cpp ---------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/Degrade.h"

#include "context/PolicyRegistry.h"
#include "ir/Program.h"
#include "pta/Trace.h"

#include <algorithm>

using namespace pt;

std::vector<std::string> pt::fallbackLadder(std::string_view Policy) {
  std::vector<std::string> Rungs;
  Rungs.emplace_back(Policy);
  // Chain walk: follow the first listed coarser pair per policy.  A policy
  // with no listed pair ends the walk right there — the old behavior of
  // silently jumping to insens manufactured a "provable" degradation the
  // ledger never proved, which validateLadder then waved through because
  // it shared the same axiom.  Callers that need a complete ladder check
  // that the walk reached insens and fail fast otherwise.  The pair list
  // is a DAG, but cap the walk anyway so a bad edit cannot loop forever.
  size_t Cap = allPolicyNames().size() + 1;
  while (Rungs.back() != "insens" && Rungs.size() <= Cap) {
    const std::string &Cur = Rungs.back();
    std::string Next;
    for (const auto &[Fine, Coarse] : precisionOrderPairs()) {
      if (Fine == Cur) {
        Next = Coarse;
        break;
      }
    }
    if (Next.empty())
      break; // No proven coarser policy: the ladder stops here.
    Rungs.push_back(Next);
  }
  return Rungs;
}

bool pt::validateLadder(const std::vector<std::string> &Rungs,
                        std::string &Error) {
  const std::vector<std::string> &Known = allPolicyNames();
  for (const std::string &R : Rungs) {
    if (std::find(Known.begin(), Known.end(), R) == Known.end()) {
      Error = "unknown policy '" + R + "' in ladder";
      return false;
    }
  }
  for (size_t I = 1; I < Rungs.size(); ++I) {
    if (!isProvablyCoarser(Rungs[I - 1], Rungs[I])) {
      // Distinguish "this step is unproven" from "the finer policy has no
      // precision-order entries at all" — the latter names the policy that
      // needs a ledger entry instead of blaming an arbitrary step.
      bool HasAnyPair = false;
      for (const auto &[Fine, Coarse] : precisionOrderPairs())
        if (Fine == Rungs[I - 1]) {
          HasAnyPair = true;
          break;
        }
      if (!HasAnyPair)
        Error = "policy '" + Rungs[I - 1] +
                "' has no precision-order pairs; no degradation from it is "
                "provable";
      else
        Error = "ladder rung '" + Rungs[I] +
                "' is not provably coarser than '" + Rungs[I - 1] + "'";
      return false;
    }
  }
  return true;
}

LadderResult pt::solveWithLadder(const Program &Prog,
                                 std::string_view PolicyName,
                                 const SolverOptions &Opts,
                                 const LadderOptions &LOpts) {
  LadderResult Out;
  Out.RequestedPolicy = std::string(PolicyName);

  std::vector<std::string> Rungs;
  if (LOpts.Rungs.empty()) {
    Rungs = fallbackLadder(PolicyName);
    if (Rungs.back() != "insens") {
      // Fail fast instead of silently degrading through an unproven jump:
      // the chain walk stopped at a policy with no precision-order pairs.
      Out.Error = "no complete fallback ladder for '" +
                  std::string(PolicyName) + "': policy '" + Rungs.back() +
                  "' has no precision-order pairs, so the derived ladder "
                  "stops before insens";
      return Out;
    }
  } else {
    Rungs.emplace_back(PolicyName);
    Rungs.insert(Rungs.end(), LOpts.Rungs.begin(), LOpts.Rungs.end());
  }
  if (!validateLadder(Rungs, Out.Error))
    return Out;

  std::vector<MethodId> Seeds;
  for (size_t RI = 0; RI < Rungs.size(); ++RI) {
    const std::string &Rung = Rungs[RI];
    auto Pol = createPolicy(Rung, Prog);
    if (!Pol) {
      Out.Error = "unknown policy '" + Rung + "'";
      return Out;
    }
    SolverOptions SOpts = Opts;
    // Fallback rungs run under fresh trace labels: heartbeat step/fact
    // series are monotone per label, and a re-run restarts from zero.
    if (RI > 0 && !Opts.TraceLabel.empty())
      SOpts.TraceLabel = Opts.TraceLabel + "~" + Rung;
    if (LOpts.WarmStart && Rung == "insens")
      SOpts.SeedReachable = Seeds;
    // Each rung is a fresh run with fresh dense object ids; derivations of
    // the landed rung must not cite facts from an aborted finer attempt.
    if (PT_PROV_ACTIVE(SOpts.Prov))
      SOpts.Prov->clear();
    AnalysisResult R = solveProgram(Prog, *Pol, SOpts);
    Out.Trail.push_back({Rung, R.SolveMs, R.Reason});

    bool ResourceAbort =
        R.Aborted && (R.Reason == AbortReason::TimeBudget ||
                      R.Reason == AbortReason::FactBudget ||
                      R.Reason == AbortReason::MemoryBudget);
    bool LastRung = RI + 1 == Rungs.size();
    if (!ResourceAbort || LastRung) {
      // Land here: converged, cancelled (the user wants out, not a
      // coarser answer), or ladder exhausted.
      if (Opts.Trace && ResourceAbort)
        Opts.Trace->ladder(Opts.TraceLabel, Rung, /*To=*/"",
                           abortReasonName(R.Reason), R.SolveMs);
      Out.LandedPolicy = Rung;
      if (RI > 0)
        Out.FallbackFrom = Out.RequestedPolicy;
      Out.Exhausted = ResourceAbort;
      Out.Policy = std::move(Pol);
      Out.Result.emplace(std::move(R));
      return Out;
    }

    if (Opts.Trace)
      Opts.Trace->ladder(Opts.TraceLabel, Rung, Rungs[RI + 1],
                         abortReasonName(R.Reason), R.SolveMs);
    if (LOpts.WarmStart)
      Seeds = R.reachableMethods();
  }
  // Unreachable: the loop always lands on its last rung.
  Out.Error = "empty ladder";
  return Out;
}
