//===- pta/Metrics.cpp ---------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/Metrics.h"

#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "support/Hashing.h"
#include "support/TableWriter.h"

#include <unordered_map>
#include <unordered_set>

using namespace pt;

std::string pt::metricsCsvHeader(bool Taint, bool WithTime) {
  std::string Out = "policy,avg_objs_per_var,cg_edges,poly_vcalls,"
                    "may_fail_casts,reachable_methods";
  if (WithTime)
    Out += ",time_s";
  Out += ",cs_vpt";
  if (Taint)
    Out += ",tainted_sinks";
  return Out;
}

std::string pt::metricsCsvRow(const PrecisionMetrics &M,
                              const std::string &Label, bool Taint,
                              bool WithTime) {
  std::string Out = Label;
  Out += ',' + formatFixed(M.AvgPointsTo, 2);
  Out += ',' + std::to_string(M.CallGraphEdges);
  Out += ',' + std::to_string(M.PolyVCalls);
  Out += ',' + std::to_string(M.MayFailCasts);
  Out += ',' + std::to_string(M.ReachableMethods);
  if (WithTime)
    Out += ',' + formatFixed(M.SolveMs / 1000.0, 3);
  Out += ',' + std::to_string(M.CsVarPointsTo);
  if (Taint)
    Out += ',' + std::to_string(M.TaintedSinks);
  return Out;
}

PrecisionMetrics pt::computeMetrics(const AnalysisResult &Result) {
  const Program &Prog = Result.program();
  PrecisionMetrics M;
  M.Aborted = Result.Aborted;
  M.Reason = Result.Reason;
  M.FaultInjected = Result.FaultInjected;
  M.SolveMs = Result.SolveMs;
  M.PeakNodes = Result.SolverNodes;
  M.PeakBytes = Result.PeakBytes;
  M.Counters = Result.Counters;
  M.CsVarPointsTo = Result.numCsVarPointsTo();
  M.FieldPointsTo = Result.numFieldPointsTo();
  M.StaticFieldPointsTo = Result.numStaticFieldPointsTo();
  M.ThrowFacts = Result.numThrowFacts();
  M.UncaughtExceptionSites = Result.uncaughtExceptions().size();
  M.NumContexts = Result.policy().ctxTable().size();
  M.NumHContexts = Result.policy().hctxTable().size();
  M.NumObjects = Result.numObjects();

  // Context-insensitive var-points-to projection: per variable, the set of
  // heap sites.  AvgPointsTo averages over variables with non-empty sets.
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> PerVar;
  for (const auto &E : Result.VarFacts) {
    auto &Set = PerVar[E.Var.index()];
    for (uint32_t Obj : E.Objs)
      Set.insert(Result.objHeap(Obj).index());
  }
  size_t TotalFacts = 0;
  for (const auto &[Var, Set] : PerVar)
    TotalFacts += Set.size();
  M.AvgPointsTo =
      PerVar.empty() ? 0.0
                     : static_cast<double>(TotalFacts) /
                           static_cast<double>(PerVar.size());

  // Context-insensitive call graph: distinct (invo, callee) pairs, and the
  // per-site target counts for the devirtualization client.
  std::unordered_set<uint64_t> CiEdges;
  for (const CallGraphEdge &E : Result.CallEdges)
    CiEdges.insert(packPair(E.Invo.index(), E.Callee.index()));
  M.CallGraphEdges = CiEdges.size();

  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> TargetsPerSite;
  for (const CallGraphEdge &E : Result.CallEdges)
    if (!Prog.invoke(E.Invo).IsStatic)
      TargetsPerSite[E.Invo.index()].insert(E.Callee.index());

  // Reachable methods (context-insensitive projection).
  std::unordered_set<uint32_t> ReachableMethods;
  for (const auto &[Method, Ctx] : Result.Reachable)
    ReachableMethods.insert(Method.index());
  M.ReachableMethods = ReachableMethods.size();

  // Poly v-calls: reachable virtual sites whose target set has >= 2
  // methods.  Sites in reachable methods with zero targets are dead code
  // to the analysis and counted as reachable sites only.
  for (uint32_t MethodIdx : ReachableMethods) {
    const MethodInfo &Body = Prog.method(MethodId(MethodIdx));
    for (InvokeId Inv : Body.Invokes) {
      if (Prog.invoke(Inv).IsStatic)
        continue;
      ++M.ReachableVCalls;
      auto It = TargetsPerSite.find(Inv.index());
      if (It != TargetsPerSite.end() && It->second.size() >= 2)
        ++M.PolyVCalls;
    }
  }

  // May-fail casts over casts in reachable methods.  A cast may fail when
  // the *source* variable may point to an object whose type is not a
  // subtype of the cast target (Doop's PotentiallyFailingCast client).
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> HeapsPerVar;
  for (const auto &E : Result.VarFacts) {
    auto &Set = HeapsPerVar[E.Var.index()];
    for (uint32_t Obj : E.Objs)
      Set.insert(Result.objHeap(Obj).index());
  }
  for (uint32_t MethodIdx : ReachableMethods) {
    const MethodInfo &Body = Prog.method(MethodId(MethodIdx));
    for (const CastInstr &C : Body.Casts) {
      ++M.ReachableCasts;
      auto It = HeapsPerVar.find(C.From.index());
      if (It == HeapsPerVar.end())
        continue;
      for (uint32_t HeapIdx : It->second) {
        if (!Prog.isSubtype(Prog.heap(HeapId(HeapIdx)).Type, C.Target)) {
          ++M.MayFailCasts;
          break;
        }
      }
    }
  }

  // Tainted sinks: distinct (sink site, argument, tag) triples where a
  // reachable sink argument may point to a taint-tagged object.  This is
  // the count behind taint::findTaintedSinks / checker HPT007; programs
  // without taint instrumentation carry no sinks and report 0.
  for (const Program::TaintSink &S : Prog.taintSinks()) {
    const InvokeInfo &Inv = Prog.invoke(S.Site);
    if (!ReachableMethods.count(Inv.InMethod.index()) ||
        S.ArgIdx >= Inv.Actuals.size())
      continue;
    auto It = HeapsPerVar.find(Inv.Actuals[S.ArgIdx].index());
    if (It == HeapsPerVar.end())
      continue;
    std::unordered_set<uint32_t> Tags;
    for (uint32_t HeapIdx : It->second)
      if (uint32_t Tag = Prog.heap(HeapId(HeapIdx)).TaintTag)
        Tags.insert(Tag);
    M.TaintedSinks += Tags.size();
  }

  return M;
}
