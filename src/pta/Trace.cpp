//===- pta/Trace.cpp -------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/Trace.h"

#include <cstdio>
#include <sstream>

using namespace pt;
using namespace pt::trace;

std::string pt::trace::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

/// {"rule_alloc":1,...} over all counters.
std::string countersJson(const telemetry::SolverCounters &C) {
  std::ostringstream OS;
  OS << '{';
  bool First = true;
  telemetry::forEachCounter(C, [&](const char *Name, uint64_t V) {
    if (!First)
      OS << ',';
    First = false;
    OS << '"' << Name << "\":" << V;
  });
  OS << '}';
  return OS.str();
}

/// Compact human form for progress lines: 1234 -> "1.2K", etc.
std::string humanCount(uint64_t N) {
  char Buf[32];
  if (N >= 1000000000)
    std::snprintf(Buf, sizeof(Buf), "%.1fG", static_cast<double>(N) / 1e9);
  else if (N >= 1000000)
    std::snprintf(Buf, sizeof(Buf), "%.1fM", static_cast<double>(N) / 1e6);
  else if (N >= 1000)
    std::snprintf(Buf, sizeof(Buf), "%.1fK", static_cast<double>(N) / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(N));
  return Buf;
}

std::string formatDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

} // namespace

TraceRecorder::TraceRecorder() = default;

TraceRecorder::~TraceRecorder() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (JsonlOpen)
    Jsonl.flush();
}

bool TraceRecorder::openJsonl(const std::string &Path, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  Jsonl.open(Path, std::ios::trunc);
  if (!Jsonl) {
    Error = "cannot write '" + Path + "'";
    return false;
  }
  JsonlOpen = true;
  Jsonl << "{\"type\":\"meta\",\"version\":1,\"telemetry\":"
        << (telemetry::SolverCounters::enabled() ? "true" : "false")
        << ",\"time_unit\":\"ms\"}\n";
  return true;
}

void TraceRecorder::enableProgress(std::ostream &OS) {
  std::lock_guard<std::mutex> Lock(Mu);
  Progress = &OS;
}

uint32_t TraceRecorder::tidLocked() {
  auto [It, Inserted] = TidByThread.try_emplace(
      std::this_thread::get_id(),
      static_cast<uint32_t>(TidByThread.size()));
  (void)Inserted;
  return It->second;
}

void TraceRecorder::writeLineLocked(const std::string &Line) {
  if (!JsonlOpen)
    return;
  Jsonl << Line << '\n';
  // Flush every record: the stream exists to observe runs that may never
  // finish, so buffered-but-unwritten lines defeat the purpose.
  Jsonl.flush();
}

void TraceRecorder::beginSpan(std::string_view Name, std::string_view Cat,
                              std::string_view ArgsJson) {
  std::lock_guard<std::mutex> Lock(Mu);
  Events.push_back({Phase::Begin, std::string(Name), std::string(Cat),
                    tidLocked(), nowMs(), std::string(ArgsJson)});
}

void TraceRecorder::endSpan(std::string_view Name, std::string_view Cat,
                            double StartMs, std::string_view ArgsJson) {
  std::lock_guard<std::mutex> Lock(Mu);
  double End = nowMs();
  uint32_t Tid = tidLocked();
  Events.push_back({Phase::End, std::string(Name), std::string(Cat), Tid,
                    End, std::string(ArgsJson)});
  ++SpanCount;
  std::ostringstream OS;
  OS << "{\"type\":\"span\",\"name\":\"" << jsonEscape(Name)
     << "\",\"cat\":\"" << jsonEscape(Cat) << "\",\"tid\":" << Tid
     << ",\"t_start_ms\":" << formatDouble(StartMs)
     << ",\"t_end_ms\":" << formatDouble(End)
     << ",\"dur_ms\":" << formatDouble(End - StartMs);
  if (!ArgsJson.empty())
    OS << ",\"args\":" << ArgsJson;
  OS << '}';
  writeLineLocked(OS.str());
}

void TraceRecorder::heartbeat(Heartbeat HB) {
  std::lock_guard<std::mutex> Lock(Mu);
  HB.TMs = nowMs();
  uint32_t Tid = tidLocked();
  ++HeartbeatCount;

  // Chrome counter series: one event per heartbeat, keyed by label.
  {
    std::ostringstream Args;
    Args << "{\"facts\":" << HB.Facts << ",\"worklist\":" << HB.WorklistDepth
         << ",\"memory_mb\":"
         << formatDouble(static_cast<double>(HB.MemoryBytes) / 1e6) << '}';
    Events.push_back({Phase::Counter, HB.Label, "heartbeat", Tid, HB.TMs,
                      Args.str()});
  }

  std::ostringstream OS;
  OS << "{\"type\":\"heartbeat\",\"label\":\"" << jsonEscape(HB.Label)
     << "\",\"tid\":" << Tid << ",\"t_ms\":" << formatDouble(HB.TMs)
     << ",\"step\":" << HB.Step << ",\"worklist\":" << HB.WorklistDepth
     << ",\"nodes\":" << HB.Nodes << ",\"facts\":" << HB.Facts
     << ",\"objects\":" << HB.Objects
     << ",\"memory_bytes\":" << HB.MemoryBytes
     << ",\"final\":" << (HB.Final ? "true" : "false");
  if (!HB.Abort.empty())
    OS << ",\"abort_reason\":\"" << jsonEscape(HB.Abort) << '"';
  OS << ",\"delta\":" << countersJson(HB.Deltas)
     << ",\"total\":" << countersJson(HB.Totals) << '}';
  writeLineLocked(OS.str());

  if (Progress) {
    // Render the whole line first and emit it as ONE stream insertion:
    // stderr is typically unbuffered, so piecewise insertions become
    // separate writes that interleave across cells at --threads > 1 (Mu
    // only serializes this recorder, not other writers of the fd).
    std::ostringstream Line;
    Line << "[hb] " << HB.Label << ": t=" << formatDouble(HB.TMs / 1000.0)
         << "s steps=" << humanCount(HB.Step)
         << " wl=" << humanCount(HB.WorklistDepth)
         << " facts=" << humanCount(HB.Facts)
         << " nodes=" << humanCount(HB.Nodes) << " mem="
         << formatDouble(static_cast<double>(HB.MemoryBytes) / 1e6) << "MB"
         << (HB.Final ? " (final)" : "");
    if (!HB.Abort.empty())
      Line << " abort=" << HB.Abort;
    Line << '\n';
    *Progress << Line.str() << std::flush;
  }

  LastByLabel[HB.Label] = std::move(HB);
}

void TraceRecorder::counters(std::string_view Label,
                             const telemetry::SolverCounters &Counters) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "{\"type\":\"counters\",\"label\":\"" << jsonEscape(Label)
     << "\",\"tid\":" << tidLocked() << ",\"t_ms\":" << formatDouble(nowMs())
     << ",\"counters\":" << countersJson(Counters) << '}';
  writeLineLocked(OS.str());
}

void TraceRecorder::request(const RequestRecord &R) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "{\"type\":\"request\",\"id\":" << R.Id << ",\"kind\":\""
     << jsonEscape(R.Kind) << "\",\"policy\":\"" << jsonEscape(R.Policy)
     << "\",\"epoch\":" << R.EpochId << ",\"outcome\":\""
     << jsonEscape(R.Outcome) << '"';
  if (!R.Code.empty())
    OS << ",\"code\":\"" << jsonEscape(R.Code) << '"';
  OS << ",\"cache_hit\":" << (R.CacheHit ? "true" : "false")
     << ",\"tid\":" << tidLocked() << ",\"t_ms\":" << formatDouble(nowMs())
     << ",\"queue_ms\":" << formatDouble(R.QueueMs)
     << ",\"latency_ms\":" << formatDouble(R.LatencyMs) << '}';
  writeLineLocked(OS.str());
  if (Progress) {
    std::ostringstream Line;
    Line << "[req] #" << R.Id << ' ' << R.Kind << ' ' << R.Outcome << " in "
         << formatDouble(R.LatencyMs) << "ms"
         << (R.CacheHit ? " (cached)" : "") << '\n';
    *Progress << Line.str() << std::flush;
  }
}

void TraceRecorder::ladder(std::string_view Label, std::string_view From,
                           std::string_view To, std::string_view Reason,
                           double SolveMs) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "{\"type\":\"ladder\",\"label\":\"" << jsonEscape(Label)
     << "\",\"tid\":" << tidLocked() << ",\"t_ms\":" << formatDouble(nowMs())
     << ",\"from\":\"" << jsonEscape(From) << "\",\"to\":\""
     << jsonEscape(To) << "\",\"reason\":\"" << jsonEscape(Reason)
     << "\",\"solve_ms\":" << formatDouble(SolveMs) << '}';
  writeLineLocked(OS.str());
  if (Progress) {
    // Same single-write discipline as the heartbeat lines above.
    std::ostringstream Line;
    Line << "[ladder] " << Label << ": " << From << " aborted (" << Reason
         << ") after " << formatDouble(SolveMs) << "ms";
    if (To.empty())
      Line << ", ladder exhausted";
    else
      Line << ", falling back to " << To;
    Line << '\n';
    *Progress << Line.str() << std::flush;
  }
}

bool TraceRecorder::lastHeartbeat(std::string_view Label,
                                  Heartbeat &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = LastByLabel.find(std::string(Label));
  if (It == LastByLabel.end())
    return false;
  Out = It->second;
  return true;
}

size_t TraceRecorder::numSpans() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return SpanCount;
}

size_t TraceRecorder::numHeartbeats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return HeartbeatCount;
}

bool TraceRecorder::writeChromeTrace(const std::string &Path,
                                     std::string &Error) const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ofstream OS(Path, std::ios::trunc);
  if (!OS) {
    Error = "cannot write '" + Path + "'";
    return false;
  }
  // Events are emitted in recorded order: per (pid, tid) the begin/end
  // sequence is exactly the call order of the RAII spans, so nesting is
  // well-formed by construction.  Timestamps are microseconds (the trace
  // event format's unit).
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool First = true;
  for (const Event &E : Events) {
    if (!First)
      OS << ",\n";
    First = false;
    const char *Ph = E.Ph == Phase::Begin ? "B"
                     : E.Ph == Phase::End ? "E"
                                          : "C";
    OS << "{\"name\":\"" << jsonEscape(E.Name) << "\",\"cat\":\""
       << jsonEscape(E.Cat) << "\",\"ph\":\"" << Ph
       << "\",\"pid\":1,\"tid\":" << E.Tid
       << ",\"ts\":" << formatDouble(E.TsMs * 1000.0);
    if (!E.ArgsJson.empty())
      OS << ",\"args\":" << E.ArgsJson;
    OS << '}';
  }
  OS << "\n]}\n";
  if (!OS) {
    Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}
