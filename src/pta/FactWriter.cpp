//===- pta/FactWriter.cpp --------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/FactWriter.h"

#include "context/ContextTable.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"

#include <filesystem>
#include <fstream>
#include <ostream>

using namespace pt;

namespace {

std::string ctxText(const AnalysisResult &R, CtxId Ctx) {
  return formatContext(R.policy().ctxTable(), Ctx, R.program());
}

std::string hctxText(const AnalysisResult &R, HCtxId HCtx) {
  return formatContext(R.policy().hctxTable(), HCtx, R.program());
}

std::string objHeapText(const AnalysisResult &R, uint32_t Obj) {
  return R.program().text(R.program().heap(R.objHeap(Obj)).Name);
}

std::string varText(const AnalysisResult &R, VarId V) {
  const Program &P = R.program();
  return P.qualifiedName(P.var(V).Owner) + "::" + P.text(P.var(V).Name);
}

} // namespace

void pt::writeVarPointsTo(const AnalysisResult &R, std::ostream &OS) {
  for (const auto &E : R.VarFacts)
    for (uint32_t Obj : E.Objs)
      OS << varText(R, E.Var) << '\t' << ctxText(R, E.Ctx) << '\t'
         << objHeapText(R, Obj) << '\t' << hctxText(R, R.objHCtx(Obj))
         << '\n';
}

void pt::writeCallGraph(const AnalysisResult &R, std::ostream &OS) {
  const Program &P = R.program();
  for (const CallGraphEdge &E : R.CallEdges)
    OS << P.text(P.invoke(E.Invo).Name) << '\t' << ctxText(R, E.CallerCtx)
       << '\t' << P.qualifiedName(E.Callee) << '\t'
       << ctxText(R, E.CalleeCtx) << '\n';
}

void pt::writeFieldPointsTo(const AnalysisResult &R, std::ostream &OS) {
  const Program &P = R.program();
  for (const auto &E : R.FieldFacts)
    for (uint32_t Obj : E.Objs)
      OS << objHeapText(R, E.BaseObj) << '\t'
         << hctxText(R, R.objHCtx(E.BaseObj)) << '\t'
         << P.text(P.field(E.Fld).Name) << '\t' << objHeapText(R, Obj)
         << '\t' << hctxText(R, R.objHCtx(Obj)) << '\n';
}

void pt::writeStaticFieldPointsTo(const AnalysisResult &R,
                                  std::ostream &OS) {
  const Program &P = R.program();
  for (const auto &E : R.StaticFacts)
    for (uint32_t Obj : E.Objs)
      OS << P.text(P.type(P.field(E.Fld).Owner).Name) << "::"
         << P.text(P.field(E.Fld).Name) << '\t' << objHeapText(R, Obj)
         << '\t' << hctxText(R, R.objHCtx(Obj)) << '\n';
}

void pt::writeMethodThrows(const AnalysisResult &R, std::ostream &OS) {
  const Program &P = R.program();
  for (const auto &E : R.ThrowFacts)
    for (uint32_t Obj : E.Objs)
      OS << P.qualifiedName(E.Meth) << '\t' << ctxText(R, E.Ctx) << '\t'
         << objHeapText(R, Obj) << '\t' << hctxText(R, R.objHCtx(Obj))
         << '\n';
}

void pt::writeReachable(const AnalysisResult &R, std::ostream &OS) {
  const Program &P = R.program();
  for (const auto &[M, Ctx] : R.Reachable)
    OS << P.qualifiedName(M) << '\t' << ctxText(R, Ctx) << '\n';
}

std::vector<std::string> pt::writeFacts(const AnalysisResult &Result,
                                        std::string_view Directory,
                                        std::string &Error) {
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::create_directories(fs::path(Directory), EC);
  if (EC) {
    Error = "cannot create directory '" + std::string(Directory) +
            "': " + EC.message();
    return {};
  }

  using WriterFn = void (*)(const AnalysisResult &, std::ostream &);
  const std::pair<const char *, WriterFn> Files[] = {
      {"VarPointsTo.facts", &writeVarPointsTo},
      {"CallGraphEdge.facts", &writeCallGraph},
      {"FieldPointsTo.facts", &writeFieldPointsTo},
      {"StaticFieldPointsTo.facts", &writeStaticFieldPointsTo},
      {"MethodThrows.facts", &writeMethodThrows},
      {"Reachable.facts", &writeReachable},
  };

  std::vector<std::string> Written;
  for (const auto &[Name, Fn] : Files) {
    fs::path Path = fs::path(Directory) / Name;
    std::ofstream OS(Path);
    if (!OS) {
      Error = "cannot open '" + Path.string() + "' for writing";
      return {};
    }
    Fn(Result, OS);
    Written.push_back(Path.string());
  }
  return Written;
}
