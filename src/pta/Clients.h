//===- pta/Clients.h - Client analyses --------------------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two client analyses the paper uses to measure precision, exposed as
/// reusable reports: call devirtualization and cast-safety checking.
/// The example binaries build human-readable output from these.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_CLIENTS_H
#define HYBRIDPT_PTA_CLIENTS_H

#include "support/Ids.h"

#include <cstdint>
#include <vector>

namespace pt {

class AnalysisResult;

/// Verdict for one virtual call site.
enum class DevirtVerdict : uint8_t {
  Dead,         ///< No receiver objects ever reach the site.
  Monomorphic,  ///< Exactly one target: the call can be devirtualized.
  Polymorphic,  ///< Two or more possible targets.
};

/// One row of the devirtualization report.
struct DevirtSite {
  InvokeId Invo;
  DevirtVerdict Verdict;
  /// Possible targets, sorted; empty for dead sites.
  std::vector<MethodId> Targets;
};

/// Classifies every reachable virtual call site.
/// Rows are ordered by invocation-site id.
std::vector<DevirtSite> devirtualizeCalls(const AnalysisResult &Result);

/// Verdict for one cast site.
enum class CastVerdict : uint8_t {
  Unreached, ///< Source variable never points to anything.
  Safe,      ///< Every pointed-to object is a subtype of the target.
  MayFail,   ///< Some pointed-to object has an incompatible type.
};

/// One row of the cast-safety report.
struct CastCheck {
  uint32_t Site;
  CastVerdict Verdict;
  /// Heap sites with incompatible types (the evidence); sorted, only
  /// populated for MayFail.
  std::vector<HeapId> Offenders;
};

/// Checks every cast site in a context-insensitively reachable method.
/// Rows are ordered by cast-site id.
std::vector<CastCheck> checkCasts(const AnalysisResult &Result);

} // namespace pt

#endif // HYBRIDPT_PTA_CLIENTS_H
