//===- pta/AnalysisResult.cpp -------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/AnalysisResult.h"

#include "ir/Program.h"

#include <algorithm>

using namespace pt;

const char *pt::abortReasonName(AbortReason Reason) {
  switch (Reason) {
  case AbortReason::None:
    return "none";
  case AbortReason::TimeBudget:
    return "time_budget";
  case AbortReason::FactBudget:
    return "fact_budget";
  case AbortReason::MemoryBudget:
    return "memory_budget";
  case AbortReason::Cancelled:
    return "cancelled";
  }
  return "none";
}

std::vector<HeapId> AnalysisResult::pointsTo(VarId V) const {
  std::vector<HeapId> Out;
  for (const VarFactsEntry &E : VarFacts) {
    if (E.Var != V)
      continue;
    for (uint32_t Obj : E.Objs)
      Out.push_back(objHeap(Obj));
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<MethodId> AnalysisResult::callTargets(InvokeId I) const {
  std::vector<MethodId> Out;
  for (const CallGraphEdge &E : CallEdges)
    if (E.Invo == I)
      Out.push_back(E.Callee);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<MethodId> AnalysisResult::reachableMethods() const {
  std::vector<MethodId> Out;
  Out.reserve(Reachable.size());
  for (const auto &[M, Ctx] : Reachable)
    Out.push_back(M);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

bool AnalysisResult::mayFailCast(uint32_t Site) const {
  const CastSite &CS = Prog->castSite(Site);
  for (const VarFactsEntry &E : VarFacts) {
    if (E.Var != CS.From)
      continue;
    for (uint32_t Obj : E.Objs)
      if (!Prog->isSubtype(Prog->heap(objHeap(Obj)).Type, CS.Target))
        return true;
  }
  return false;
}

size_t AnalysisResult::numCsVarPointsTo() const {
  size_t N = 0;
  for (const VarFactsEntry &E : VarFacts)
    N += E.Objs.size();
  return N;
}

size_t AnalysisResult::numFieldPointsTo() const {
  size_t N = 0;
  for (const FieldFactsEntry &E : FieldFacts)
    N += E.Objs.size();
  return N;
}

size_t AnalysisResult::numStaticFieldPointsTo() const {
  size_t N = 0;
  for (const StaticFactsEntry &E : StaticFacts)
    N += E.Objs.size();
  return N;
}

size_t AnalysisResult::numThrowFacts() const {
  size_t N = 0;
  for (const ThrowFactsEntry &E : ThrowFacts)
    N += E.Objs.size();
  return N;
}

std::vector<HeapId> AnalysisResult::uncaughtExceptions() const {
  std::vector<HeapId> Out;
  const auto &Entries = Prog->entryPoints();
  for (const ThrowFactsEntry &E : ThrowFacts) {
    bool IsEntry =
        std::find(Entries.begin(), Entries.end(), E.Meth) != Entries.end();
    if (!IsEntry)
      continue;
    for (uint32_t Obj : E.Objs)
      Out.push_back(objHeap(Obj));
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<std::vector<uint32_t>> AnalysisResult::pointsToByVar() const {
  std::vector<std::vector<uint32_t>> Out(Prog->numVars());
  for (const VarFactsEntry &E : VarFacts)
    for (uint32_t Obj : E.Objs)
      Out[E.Var.index()].push_back(objHeap(Obj).index());
  for (std::vector<uint32_t> &Set : Out) {
    std::sort(Set.begin(), Set.end());
    Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
  }
  return Out;
}

std::vector<std::tuple<uint32_t, uint32_t, uint32_t>>
AnalysisResult::ciFieldEdges() const {
  std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> Out;
  for (const FieldFactsEntry &E : FieldFacts)
    for (uint32_t Obj : E.Objs)
      Out.emplace_back(objHeap(E.BaseObj).index(), E.Fld.index(),
                       objHeap(Obj).index());
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<std::pair<uint32_t, uint32_t>>
AnalysisResult::ciStaticEdges() const {
  std::vector<std::pair<uint32_t, uint32_t>> Out;
  for (const StaticFactsEntry &E : StaticFacts)
    for (uint32_t Obj : E.Objs)
      Out.emplace_back(E.Fld.index(), objHeap(Obj).index());
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

namespace {

/// Appends the canonical element tuple of a context to \p Row.
template <typename IdT>
void appendCtx(std::vector<uint32_t> &Row, const ContextTable<IdT> &Table,
               IdT Id) {
  appendCanonicalContext(Table, Id, Row);
}

void sortRows(std::vector<std::vector<uint32_t>> &Rows) {
  std::sort(Rows.begin(), Rows.end());
  Rows.erase(std::unique(Rows.begin(), Rows.end()), Rows.end());
}

} // namespace

std::vector<std::vector<uint32_t>> AnalysisResult::exportVarPointsTo() const {
  std::vector<std::vector<uint32_t>> Rows;
  const auto &Ctxs = Policy->ctxTable();
  const auto &HCtxs = Policy->hctxTable();
  for (const VarFactsEntry &E : VarFacts) {
    for (uint32_t Obj : E.Objs) {
      std::vector<uint32_t> Row;
      Row.push_back(E.Var.index());
      appendCtx(Row, Ctxs, E.Ctx);
      Row.push_back(objHeap(Obj).index());
      appendCtx(Row, HCtxs, objHCtx(Obj));
      Rows.push_back(std::move(Row));
    }
  }
  sortRows(Rows);
  return Rows;
}

std::vector<std::vector<uint32_t>> AnalysisResult::exportCallGraph() const {
  std::vector<std::vector<uint32_t>> Rows;
  const auto &Ctxs = Policy->ctxTable();
  for (const CallGraphEdge &E : CallEdges) {
    std::vector<uint32_t> Row;
    Row.push_back(E.Invo.index());
    appendCtx(Row, Ctxs, E.CallerCtx);
    Row.push_back(E.Callee.index());
    appendCtx(Row, Ctxs, E.CalleeCtx);
    Rows.push_back(std::move(Row));
  }
  sortRows(Rows);
  return Rows;
}

std::vector<std::vector<uint32_t>>
AnalysisResult::exportFieldPointsTo() const {
  std::vector<std::vector<uint32_t>> Rows;
  const auto &HCtxs = Policy->hctxTable();
  for (const FieldFactsEntry &E : FieldFacts) {
    for (uint32_t Obj : E.Objs) {
      std::vector<uint32_t> Row;
      Row.push_back(objHeap(E.BaseObj).index());
      appendCtx(Row, HCtxs, objHCtx(E.BaseObj));
      Row.push_back(E.Fld.index());
      Row.push_back(objHeap(Obj).index());
      appendCtx(Row, HCtxs, objHCtx(Obj));
      Rows.push_back(std::move(Row));
    }
  }
  sortRows(Rows);
  return Rows;
}

std::vector<std::vector<uint32_t>>
AnalysisResult::exportStaticFieldPointsTo() const {
  std::vector<std::vector<uint32_t>> Rows;
  const auto &HCtxs = Policy->hctxTable();
  for (const StaticFactsEntry &E : StaticFacts) {
    for (uint32_t Obj : E.Objs) {
      std::vector<uint32_t> Row;
      Row.push_back(E.Fld.index());
      Row.push_back(objHeap(Obj).index());
      appendCtx(Row, HCtxs, objHCtx(Obj));
      Rows.push_back(std::move(Row));
    }
  }
  sortRows(Rows);
  return Rows;
}

std::vector<std::vector<uint32_t>>
AnalysisResult::exportThrowPointsTo() const {
  std::vector<std::vector<uint32_t>> Rows;
  const auto &Ctxs = Policy->ctxTable();
  const auto &HCtxs = Policy->hctxTable();
  for (const ThrowFactsEntry &E : ThrowFacts) {
    for (uint32_t Obj : E.Objs) {
      std::vector<uint32_t> Row;
      Row.push_back(E.Meth.index());
      appendCtx(Row, Ctxs, E.Ctx);
      Row.push_back(objHeap(Obj).index());
      appendCtx(Row, HCtxs, objHCtx(Obj));
      Rows.push_back(std::move(Row));
    }
  }
  sortRows(Rows);
  return Rows;
}

std::vector<std::vector<uint32_t>> AnalysisResult::exportReachable() const {
  std::vector<std::vector<uint32_t>> Rows;
  const auto &Ctxs = Policy->ctxTable();
  for (const auto &[M, Ctx] : Reachable) {
    std::vector<uint32_t> Row;
    Row.push_back(M.index());
    appendCtx(Row, Ctxs, Ctx);
    Rows.push_back(std::move(Row));
  }
  sortRows(Rows);
  return Rows;
}
