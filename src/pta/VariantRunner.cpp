//===- pta/VariantRunner.cpp ---------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/VariantRunner.h"

#include "context/PolicyRegistry.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "pta/Trace.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace pt;

namespace {

/// One (program, policy) cell: repeated runs, median time.  The reported
/// metrics are the *median-time repetition's* metrics wholesale, so the
/// time, counters, and precision columns all describe one coherent run
/// (an aborted repetition's truncated time never enters the median).
/// When a trace sink is configured, the cell appears as one span on its
/// worker thread's timeline with solve/metrics sub-spans per repetition,
/// and its final counters are recorded under the cell label.
PrecisionMetrics runOneCell(const Program &Prog, const std::string &Policy,
                            const SolverOptions &SOpts, uint32_t Runs,
                            const std::string &LabelPrefix) {
  SolverOptions CellOpts = SOpts;
  CellOpts.TraceLabel = LabelPrefix + Policy;
  trace::TraceRecorder::Span CellSpan(CellOpts.Trace, CellOpts.TraceLabel,
                                      "cell");
  std::vector<PrecisionMetrics> Reps;
  for (uint32_t RunIdx = 0; RunIdx < Runs; ++RunIdx) {
    auto Pol = createPolicy(Policy, Prog);
    if (!Pol) {
      PrecisionMetrics Unknown;
      Unknown.Aborted = true;
      return Unknown;
    }
    Solver S(Prog, *Pol, CellOpts);
    AnalysisResult R = [&] {
      trace::TraceRecorder::Span SolveSpan(CellOpts.Trace, "solve", "phase");
      return S.run();
    }();
    {
      trace::TraceRecorder::Span MetricsSpan(CellOpts.Trace, "metrics",
                                             "phase");
      Reps.push_back(computeMetrics(R));
    }
    if (Reps.back().Aborted)
      break; // A timeout will time out again; report the dash.
  }
  // Pick the repetition whose SolveMs is the median of the completed runs;
  // an aborted cell reports the aborted repetition itself (its partial
  // counters are still the truest description of what happened).
  PrecisionMetrics Cell;
  if (Reps.back().Aborted) {
    Cell = Reps.back();
  } else {
    std::vector<size_t> Order(Reps.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return Reps[A].SolveMs < Reps[B].SolveMs;
    });
    Cell = Reps[Order[Order.size() / 2]];
  }
  if (CellOpts.Trace)
    CellOpts.Trace->counters(CellOpts.TraceLabel, Cell.Counters);
  return Cell;
}

} // namespace

std::vector<PrecisionMetrics>
pt::runVariantMatrix(const Program &Prog,
                     const std::vector<std::string> &Policies,
                     const MatrixOptions &Opts) {
  std::vector<PrecisionMetrics> Cells(Policies.size());
  uint32_t Runs = Opts.Runs == 0 ? 1 : Opts.Runs;
  parallelFor(Policies.size(), Opts.Threads, [&](size_t I) {
    Cells[I] = runOneCell(Prog, Policies[I], Opts.Solver, Runs,
                          Opts.TraceLabelPrefix);
  });
  return Cells;
}
