//===- pta/VariantRunner.cpp ---------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/VariantRunner.h"

#include "context/PolicyRegistry.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace pt;

namespace {

/// One (program, policy) cell: repeated runs, median time.
PrecisionMetrics runOneCell(const Program &Prog, const std::string &Policy,
                            const SolverOptions &SOpts, uint32_t Runs) {
  std::vector<double> Times;
  PrecisionMetrics Last;
  for (uint32_t RunIdx = 0; RunIdx < Runs; ++RunIdx) {
    auto Pol = createPolicy(Policy, Prog);
    if (!Pol) {
      Last.Aborted = true;
      return Last;
    }
    Solver S(Prog, *Pol, SOpts);
    AnalysisResult R = S.run();
    Last = computeMetrics(R);
    Times.push_back(Last.SolveMs);
    if (Last.Aborted)
      break; // A timeout will time out again; report the dash.
  }
  std::sort(Times.begin(), Times.end());
  Last.SolveMs = Times[Times.size() / 2];
  return Last;
}

} // namespace

std::vector<PrecisionMetrics>
pt::runVariantMatrix(const Program &Prog,
                     const std::vector<std::string> &Policies,
                     const MatrixOptions &Opts) {
  std::vector<PrecisionMetrics> Cells(Policies.size());
  uint32_t Runs = Opts.Runs == 0 ? 1 : Opts.Runs;
  parallelFor(Policies.size(), Opts.Threads, [&](size_t I) {
    Cells[I] = runOneCell(Prog, Policies[I], Opts.Solver, Runs);
  });
  return Cells;
}
