//===- pta/VariantRunner.cpp ---------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/VariantRunner.h"

#include "context/PolicyRegistry.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "pta/Degrade.h"
#include "pta/Trace.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace pt;

namespace {

/// One (program, policy) cell: repeated runs, median time.  The reported
/// metrics are the *median-time repetition's* metrics wholesale, so the
/// time, counters, and precision columns all describe one coherent run
/// (an aborted repetition's truncated time never enters the median).
/// When a trace sink is configured, the cell appears as one span on its
/// worker thread's timeline with solve/metrics sub-spans per repetition,
/// and its final counters are recorded under the cell label.
PrecisionMetrics runOneCell(const Program &Prog, const std::string &Policy,
                            const SolverOptions &SOpts,
                            const MatrixOptions &MOpts,
                            const std::string &LabelPrefix) {
  uint32_t Runs = MOpts.Runs == 0 ? 1 : MOpts.Runs;
  SolverOptions CellOpts = SOpts;
  CellOpts.TraceLabel = LabelPrefix + Policy;
  trace::TraceRecorder::Span CellSpan(CellOpts.Trace, CellOpts.TraceLabel,
                                      "cell");
  std::vector<PrecisionMetrics> Reps;
  // Per-repetition provenance: each repetition is its own run with its own
  // dense object ids, so each gets a fresh recorder (never the shared
  // MatrixOptions::Solver.Prov, which concurrent cells would corrupt).
  const bool DoProfile = MOpts.Profile && HYBRIDPT_PROVENANCE_ENABLED != 0;
  for (uint32_t RunIdx = 0; RunIdx < Runs; ++RunIdx) {
    PrecisionMetrics Rep;
    prov::Recorder ProvRec;
    CellOpts.Prov = DoProfile ? &ProvRec : nullptr;
    if (MOpts.UseLadder) {
      LadderOptions LOpts;
      LOpts.Rungs = MOpts.LadderRungs;
      LadderResult LR = [&] {
        trace::TraceRecorder::Span SolveSpan(CellOpts.Trace, "solve",
                                             "phase");
        return solveWithLadder(Prog, Policy, CellOpts, LOpts);
      }();
      if (!LR.Result) {
        Rep.Aborted = true; // Unknown policy or invalid ladder.
        return Rep;
      }
      {
        trace::TraceRecorder::Span MetricsSpan(CellOpts.Trace, "metrics",
                                               "phase");
        Rep = computeMetrics(*LR.Result);
      }
      Rep.LandedPolicy = LR.LandedPolicy;
      Rep.FallbackFrom = LR.FallbackFrom;
      Rep.LadderTrail = std::move(LR.Trail);
      if (DoProfile && !Rep.Aborted)
        Rep.ProfileJson = prov::renderBlameJson(
            prov::blame(ProvRec, *LR.Result, MOpts.ProfileTopK));
    } else {
      auto Pol = createPolicy(Policy, Prog);
      if (!Pol) {
        Rep.Aborted = true;
        return Rep;
      }
      AnalysisResult R = [&] {
        trace::TraceRecorder::Span SolveSpan(CellOpts.Trace, "solve",
                                             "phase");
        // Engine choice (worklist or summary) rides in on CellOpts.
        return solveProgram(Prog, *Pol, CellOpts);
      }();
      {
        trace::TraceRecorder::Span MetricsSpan(CellOpts.Trace, "metrics",
                                               "phase");
        Rep = computeMetrics(R);
      }
      if (DoProfile && !Rep.Aborted)
        Rep.ProfileJson = prov::renderBlameJson(
            prov::blame(ProvRec, R, MOpts.ProfileTopK));
    }
    Reps.push_back(std::move(Rep));
    // A genuine resource-budget abort will abort again, so stop repeating
    // and report the dash.  Injected faults and cancellations are not
    // resource verdicts about this cell: keep going, so the remaining
    // repetitions (a cancelled token makes them near-instant no-ops) can
    // still yield a completed run to report.
    const PrecisionMetrics &Last = Reps.back();
    if (Last.Aborted && !Last.FaultInjected &&
        Last.Reason != AbortReason::Cancelled)
      break;
  }
  // Pick the repetition whose SolveMs is the median of the completed runs;
  // a cell with no completed repetition reports the last aborted one (its
  // partial counters are still the truest description of what happened).
  std::vector<size_t> Done;
  for (size_t I = 0; I < Reps.size(); ++I)
    if (!Reps[I].Aborted)
      Done.push_back(I);
  PrecisionMetrics Cell;
  if (Done.empty()) {
    Cell = Reps.back();
  } else {
    std::sort(Done.begin(), Done.end(), [&](size_t A, size_t B) {
      return Reps[A].SolveMs < Reps[B].SolveMs;
    });
    Cell = Reps[Done[Done.size() / 2]];
  }
  if (CellOpts.Trace)
    CellOpts.Trace->counters(CellOpts.TraceLabel, Cell.Counters);
  return Cell;
}

} // namespace

std::vector<PrecisionMetrics>
pt::runVariantMatrix(const Program &Prog,
                     const std::vector<std::string> &Policies,
                     const MatrixOptions &Opts) {
  std::vector<PrecisionMetrics> Cells(Policies.size());
  parallelFor(Policies.size(), Opts.Threads, [&](size_t I) {
    Cells[I] = runOneCell(Prog, Policies[I], Opts.Solver, Opts,
                          Opts.TraceLabelPrefix);
  });
  return Cells;
}
