//===- pta/VariantRunner.cpp ---------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/VariantRunner.h"

#include "context/PolicyRegistry.h"
#include "ir/Program.h"
#include "pta/AnalysisResult.h"
#include "pta/Trace.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace pt;

namespace {

/// One (program, policy) cell: repeated runs, median time.  When a trace
/// sink is configured, the cell appears as one span on its worker thread's
/// timeline with solve/metrics sub-spans per repetition, and its final
/// counters are recorded under the cell label.
PrecisionMetrics runOneCell(const Program &Prog, const std::string &Policy,
                            const SolverOptions &SOpts, uint32_t Runs,
                            const std::string &LabelPrefix) {
  SolverOptions CellOpts = SOpts;
  CellOpts.TraceLabel = LabelPrefix + Policy;
  trace::TraceRecorder::Span CellSpan(CellOpts.Trace, CellOpts.TraceLabel,
                                      "cell");
  std::vector<double> Times;
  PrecisionMetrics Last;
  for (uint32_t RunIdx = 0; RunIdx < Runs; ++RunIdx) {
    auto Pol = createPolicy(Policy, Prog);
    if (!Pol) {
      Last.Aborted = true;
      return Last;
    }
    Solver S(Prog, *Pol, CellOpts);
    AnalysisResult R = [&] {
      trace::TraceRecorder::Span SolveSpan(CellOpts.Trace, "solve", "phase");
      return S.run();
    }();
    {
      trace::TraceRecorder::Span MetricsSpan(CellOpts.Trace, "metrics",
                                             "phase");
      Last = computeMetrics(R);
    }
    Times.push_back(Last.SolveMs);
    if (Last.Aborted)
      break; // A timeout will time out again; report the dash.
  }
  std::sort(Times.begin(), Times.end());
  Last.SolveMs = Times[Times.size() / 2];
  if (CellOpts.Trace)
    CellOpts.Trace->counters(CellOpts.TraceLabel, Last.Counters);
  return Last;
}

} // namespace

std::vector<PrecisionMetrics>
pt::runVariantMatrix(const Program &Prog,
                     const std::vector<std::string> &Policies,
                     const MatrixOptions &Opts) {
  std::vector<PrecisionMetrics> Cells(Policies.size());
  uint32_t Runs = Opts.Runs == 0 ? 1 : Opts.Runs;
  parallelFor(Policies.size(), Opts.Threads, [&](size_t I) {
    Cells[I] = runOneCell(Prog, Policies[I], Opts.Solver, Runs,
                          Opts.TraceLabelPrefix);
  });
  return Cells;
}
