//===- pta/DotExport.h - GraphViz rendering ---------------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders analysis results as GraphViz digraphs: the context-insensitive
/// call graph (methods as nodes) and a points-to neighbourhood (variables
/// and allocation sites around a focus method).  Output is plain DOT text
/// suitable for `dot -Tsvg`.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_DOTEXPORT_H
#define HYBRIDPT_PTA_DOTEXPORT_H

#include "support/Ids.h"

#include <iosfwd>
#include <string>

namespace pt {

class AnalysisResult;

/// Options for call-graph rendering.
struct CallGraphDotOptions {
  /// Cluster methods by declaring class.
  bool ClusterByClass = true;
  /// Skip methods with more than this many in+out edges (hubs clutter);
  /// 0 disables the filter.
  size_t HubLimit = 0;
};

/// Writes the context-insensitive call graph of \p Result as DOT.
void writeCallGraphDot(const AnalysisResult &Result, std::ostream &OS,
                       const CallGraphDotOptions &Opts = {});

/// Writes the points-to neighbourhood of \p Focus: its locals, the
/// allocation sites they may point to (ellipses), and field edges between
/// those objects.
void writePointsToDot(const AnalysisResult &Result, MethodId Focus,
                      std::ostream &OS);

/// Convenience: render to a string.
std::string callGraphDot(const AnalysisResult &Result,
                         const CallGraphDotOptions &Opts = {});
std::string pointsToDot(const AnalysisResult &Result, MethodId Focus);

} // namespace pt

#endif // HYBRIDPT_PTA_DOTEXPORT_H
