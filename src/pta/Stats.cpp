//===- pta/Stats.cpp ------------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/Stats.h"

#include "ir/Program.h"
#include "pta/AnalysisResult.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace pt;

namespace {

/// Keeps the \p TopN largest (id, count) pairs, count-descending.
template <typename IdT>
std::vector<std::pair<IdT, size_t>>
topN(const std::unordered_map<uint32_t, size_t> &Counts, size_t TopN) {
  std::vector<std::pair<IdT, size_t>> All;
  All.reserve(Counts.size());
  for (const auto &[Id, Count] : Counts)
    All.push_back({IdT(Id), Count});
  std::sort(All.begin(), All.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  if (All.size() > TopN)
    All.resize(TopN);
  return All;
}

size_t log2Bucket(size_t Size) {
  size_t Bucket = 0;
  size_t Bound = 1;
  while (Bound < Size) {
    Bound <<= 1;
    ++Bucket;
  }
  return Bucket;
}

} // namespace

ContextStats pt::computeStats(const AnalysisResult &Result, size_t TopN) {
  const Program &Prog = Result.program();
  ContextStats Stats;

  // Contexts per method.
  std::unordered_map<uint32_t, size_t> CtxPerMethod;
  for (const auto &[M, Ctx] : Result.Reachable)
    ++CtxPerMethod[M.index()];
  size_t Total = 0;
  for (const auto &[M, N] : CtxPerMethod) {
    Total += N;
    Stats.MaxContextsPerMethod = std::max(Stats.MaxContextsPerMethod, N);
  }
  Stats.AvgContextsPerMethod =
      CtxPerMethod.empty()
          ? 0.0
          : static_cast<double>(Total) /
                static_cast<double>(CtxPerMethod.size());
  Stats.TopMethodsByContexts = topN<MethodId>(CtxPerMethod, TopN);

  // Projected per-variable set sizes.
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> PerVar;
  std::unordered_map<uint32_t, size_t> FactsPerMethod;
  for (const auto &E : Result.VarFacts) {
    auto &Set = PerVar[E.Var.index()];
    for (uint32_t Obj : E.Objs)
      Set.insert(Result.objHeap(Obj).index());
    FactsPerMethod[Prog.var(E.Var).Owner.index()] += E.Objs.size();
  }

  std::vector<size_t> Sizes;
  std::unordered_map<uint32_t, size_t> VarSizes;
  for (const auto &[Var, Set] : PerVar) {
    Sizes.push_back(Set.size());
    VarSizes[Var] = Set.size();
    size_t Bucket = log2Bucket(Set.size());
    if (Stats.PointsToSizeHistogram.size() <= Bucket)
      Stats.PointsToSizeHistogram.resize(Bucket + 1, 0);
    ++Stats.PointsToSizeHistogram[Bucket];
  }
  if (!Sizes.empty()) {
    std::nth_element(Sizes.begin(), Sizes.begin() + Sizes.size() / 2,
                     Sizes.end());
    Stats.MedianPointsToSize = Sizes[Sizes.size() / 2];
  }
  Stats.FattestVars = topN<VarId>(VarSizes, TopN);
  Stats.TopMethodsByFacts = topN<MethodId>(FactsPerMethod, TopN);
  return Stats;
}

std::string pt::formatStats(const ContextStats &Stats, const Program &Prog) {
  std::ostringstream OS;
  OS << "contexts per method: max " << Stats.MaxContextsPerMethod
     << ", mean " << Stats.AvgContextsPerMethod << "\n";
  OS << "median points-to set size: " << Stats.MedianPointsToSize << "\n";

  OS << "points-to size histogram (log2 buckets):\n";
  size_t Lo = 1;
  for (size_t I = 0; I < Stats.PointsToSizeHistogram.size(); ++I) {
    size_t Hi = size_t(1) << I;
    OS << "  [" << Lo << (Hi == Lo ? "" : "-" + std::to_string(Hi))
       << "]: " << Stats.PointsToSizeHistogram[I] << "\n";
    Lo = Hi + 1;
  }

  OS << "hottest methods by contexts:\n";
  for (const auto &[M, N] : Stats.TopMethodsByContexts)
    OS << "  " << Prog.qualifiedName(M) << ": " << N << "\n";
  OS << "hottest methods by facts:\n";
  for (const auto &[M, N] : Stats.TopMethodsByFacts)
    OS << "  " << Prog.qualifiedName(M) << ": " << N << "\n";
  OS << "fattest variables:\n";
  for (const auto &[V, N] : Stats.FattestVars)
    OS << "  " << Prog.qualifiedName(Prog.var(V).Owner)
       << "::" << Prog.text(Prog.var(V).Name) << ": " << N << "\n";
  return OS.str();
}
