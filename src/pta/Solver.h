//===- pta/Solver.h - Specialized points-to solver --------------*- C++ -*-===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-specialized fixpoint solver for the paper's nine analysis rules
/// (Figure 2): subset-based, flow-insensitive, field-sensitive points-to
/// analysis with on-the-fly call-graph construction, parameterized by a
/// \c ContextPolicy.
///
/// Algorithm: difference propagation over a growing copy-edge graph.
/// Nodes are interned (variable, context) pairs plus (object, field) slots;
/// points-to facts are dense (heap, heap-context) object ids.  Analyzing a
/// newly reachable (method, context) instantiates the method's instruction
/// bag: allocations seed facts (via RECORD), moves/casts add edges, calls
/// add inter-procedural edges (via MERGE / MERGESTATIC), and loads, stores
/// and virtual calls subscribe to their base variable's node so that each
/// newly observed receiver object extends the graph.  This is the standard
/// explicit counterpart of semi-naive Datalog evaluation and computes
/// exactly the model of the paper's rules (differentially tested against
/// the Datalog transcription in src/ptaref).
///
/// Data structures are specialized for the hot paths: per-node points-to
/// sets are hybrid inline-vector/bitmap \c ObjectSet (append-only, so
/// replay walks by position instead of copying a snapshot, and the
/// difference-propagation delta is just a cursor), and every intern table
/// and dedup set is a flat robin-hood \c FlatMap / \c FlatSet.
///
//===----------------------------------------------------------------------===//

#ifndef HYBRIDPT_PTA_SOLVER_H
#define HYBRIDPT_PTA_SOLVER_H

#include "pta/AnalysisResult.h"
#include "pta/provenance/Provenance.h"
#include "support/Cancel.h"
#include "support/FaultPlan.h"
#include "support/FlatMap.h"
#include "support/Ids.h"
#include "support/ObjectSet.h"
#include "support/Telemetry.h"
#include "support/Timer.h"

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace pt {

class Program;
class ContextPolicy;
struct CutShortcutPlan;

namespace trace {
class TraceRecorder;
}

/// Which fixpoint engine solves the cell.  Both engines compute the same
/// least fixpoint and produce identical \c AnalysisResult exports (the
/// equivalence tests assert bit-identity); they differ only in schedule.
enum class SolverEngine : uint8_t {
  /// The whole-program difference-propagation worklist (this file).
  Worklist,
  /// The compositional bottom-up SCC solver (pta/summary/): the
  /// context-insensitive call graph is condensed, each SCC is solved as a
  /// partition with memoized (method, context) summaries, and independent
  /// SCCs run concurrently on a work-stealing pool.
  Summary,
};

/// "worklist" / "summary".
const char *solverEngineName(SolverEngine E);

/// Parses an engine name; false on unknown names (\p Out untouched).
bool parseSolverEngine(std::string_view Name, SolverEngine &Out);

/// Resource budgets and observability hooks for one solver run.
struct SolverOptions {
  /// Wall-clock budget in milliseconds; 0 = unlimited.  Expired runs return
  /// with \c AnalysisResult::Aborted set (the paper's dash entries).
  uint64_t TimeBudgetMs = 0;
  /// Maximum number of points-to facts; 0 = unlimited.
  uint64_t MaxFacts = 0;
  /// Hard cap on the solver's persistent container bytes (the same
  /// accounting as \c AnalysisResult::PeakBytes); 0 = unlimited.  Polled
  /// amortized (every ~8K budget ticks, since the walk is O(nodes)), so a
  /// run may overshoot by one polling interval before aborting with
  /// \c AbortReason::MemoryBudget.
  uint64_t MemoryBudgetBytes = 0;
  /// Cooperative cancellation (SIGINT / process deadline); nullptr = none.
  /// A tripped token yields a clean \c AbortReason::Cancelled result with
  /// flushed heartbeats instead of a killed process.
  const CancelToken *Cancel = nullptr;
  /// Deterministic fault injection (docs/ROBUSTNESS.md).  An empty plan
  /// falls back to the HYBRIDPT_FAULT_PLAN / HYBRIDPT_TEST_BREAK
  /// environment plan at construction.
  FaultPlan Faults;
  /// Warm-start seeds: methods marked reachable in the policy's initial
  /// context before the entry points, used by the fallback ladder to reuse
  /// an aborted finer run's reachable set.  Sound only when every seed is
  /// reachable in this run's own fixpoint (e.g. context-insensitive rungs
  /// seeded from any finer partial run); then the least fixpoint — and so
  /// every precision metric — is unchanged, only convergence is faster.
  std::vector<MethodId> SeedReachable;
  /// Heartbeat/trace sink; nullptr disables all sampling.
  trace::TraceRecorder *Trace = nullptr;
  /// Label stamped on this run's heartbeats, e.g. "luindex/2obj+H".
  std::string TraceLabel;
  /// Emit a heartbeat every this many worklist steps (0 = never by steps).
  uint64_t HeartbeatSteps = 65536;
  /// ...or whenever this many milliseconds passed since the last one
  /// (polled every 1024 steps; 0 = never by time).
  uint64_t HeartbeatMs = 250;
  /// Derivation-provenance recorder (docs/OBSERVABILITY.md): when non-null
  /// and the build compiles HYBRIDPT_PROVENANCE in, every derived fact gets
  /// a step naming the Figure-2 rule and premise facts.  The arena's bytes
  /// count against \c MemoryBudgetBytes.  Null keeps every hook a dead
  /// single-pointer test.
  prov::Recorder *Prov = nullptr;
  /// Which engine solves the cell (see \c SolverEngine).
  SolverEngine Engine = SolverEngine::Worklist;
  /// Worker threads for \c SolverEngine::Summary (ignored by the
  /// worklist engine).  1 = deterministic inline sweep without a pool;
  /// 0 = one worker per hardware thread.  The result is bit-identical at
  /// every thread count either way.
  unsigned SummaryThreads = 1;
};

/// Solves \p Prog under \p Policy with the engine selected by
/// \p Opts.Engine — the single entry point harnesses should use, so a
/// cell's engine is a run-time knob exactly like its budgets.  Defined in
/// summary/SummarySolver.cpp.
AnalysisResult solveProgram(const Program &Prog, ContextPolicy &Policy,
                            const SolverOptions &Opts = {});

/// One-shot solver: construct, \c run(), discard.
class Solver {
public:
  Solver(const Program &Prog, ContextPolicy &Policy, SolverOptions Opts = {});

  /// Runs to fixpoint (or budget exhaustion) and returns the result
  /// relations.  May be called once.
  AnalysisResult run();

private:
  // --- Node space ---

  enum class NodeKind : uint8_t {
    VarCtx,
    FieldSlot,
    StaticSlot,
    /// The set of exception objects escaping a (method, context) —
    /// METHODTHROWS in the reference rules.
    ThrowSlot,
  };

  struct LoadSub {
    FieldId Fld;
    uint32_t ToNode;
  };
  struct StoreSub {
    FieldId Fld;
    uint32_t FromNode;
  };
  struct DispatchSub {
    InvokeId Invo;
    CtxId CallerCtx;
  };
  struct CastEdge {
    uint32_t ToNode;
    TypeId Filter;
  };

  struct Node {
    /// The points-to set.  Append-only insertion order makes positions
    /// stable, so the pending delta is just the suffix [Scanned, size()).
    ObjectSet Set;
    /// Facts [0, Scanned) have been propagated to all subscriptions.
    uint32_t Scanned = 0;
    std::vector<uint32_t> Edges;
    std::vector<CastEdge> CastEdges;
    std::vector<LoadSub> Loads;
    std::vector<StoreSub> Stores;
    std::vector<DispatchSub> Dispatches;
    /// On a thrown-var node: packed (method, ctx) pairs to route arriving
    /// objects through (the raising frames).
    std::vector<uint64_t> ThrowSubs;
    /// On a ThrowSlot node: packed (callerMethod, callerCtx) pairs the
    /// escaping objects escalate into.
    std::vector<uint64_t> ThrowLinks;
    bool Queued = false;
  };

  struct NodeDesc {
    NodeKind Kind;
    uint32_t A; ///< VarId index or dense object id.
    uint32_t B; ///< CtxId index or FieldId index.
  };

  uint32_t varNode(VarId V, CtxId Ctx);
  uint32_t fieldNode(uint32_t Obj, FieldId Fld);
  uint32_t staticNode(FieldId Fld);
  uint32_t throwNode(MethodId M, CtxId Ctx);
  uint32_t internObject(HeapId Heap, HCtxId HCtx);

  /// Delivers an exception object raised in or escalated into
  /// (\p M, \p Ctx): binds matching handlers or escapes to the method's
  /// throw slot.  \p WhyPrem / \p WhyAux are the provenance premises: the
  /// thrown-var (or callee-throw-slot) fact, plus the call edge when the
  /// object is escalating (a valid aux selects the Escalate rule variants).
  void routeThrow(uint32_t Obj, MethodId M, CtxId Ctx,
                  uint32_t WhyPrem = prov::InvalidFact,
                  uint32_t WhyAux = prov::InvalidFact);

  /// Adds an escalation link callee-throw-slot -> caller frame, replaying
  /// existing facts.  \p WhyAux is the provenance call-edge fact.
  void addThrowLink(uint32_t ThrowNodeIdx, MethodId CallerM, CtxId CallerCtx,
                    uint32_t WhyAux = prov::InvalidFact);

  // --- Fact and edge insertion (all idempotent) ---

  /// Returns true when the fact was newly inserted (the provenance hooks
  /// record a derivation step exactly then).
  bool addFact(uint32_t NodeIdx, uint32_t Obj);
  void addEdge(uint32_t From, uint32_t To);
  void addCastEdge(uint32_t From, uint32_t To, TypeId Filter);

  /// Cast-edge filter predicate.  A valid \p Filter admits subtypes of the
  /// target type; an invalid one marks a sanitize edge and admits only
  /// objects whose allocation site carries no taint tag.
  bool passesCastFilter(uint32_t Obj, TypeId Filter) const;

  /// REACHABLE(M, Ctx): instantiates the method body on first sight.
  /// \p Why / \p WhyPrem describe how reachability was derived (entry
  /// point, ladder seed, or a call edge) for the provenance arena.
  void ensureReachable(MethodId M, CtxId Ctx,
                       prov::Rule Why = prov::Rule::Entry,
                       uint32_t WhyPrem = prov::InvalidFact);

  /// Handles one receiver object arriving at a virtual call's base node.
  void dispatch(const DispatchSub &Sub, uint32_t Obj);

  /// Wires argument/return edges for a discovered call-graph edge.
  /// \p CallWhy is VCall or SCall; \p CallPrem the premise fact (receiver
  /// VarPointsTo resp. caller Reachable).
  void wireCall(InvokeId Invo, CtxId CallerCtx, MethodId Callee,
                CtxId CalleeCtx, prov::Rule CallWhy = prov::Rule::SCall,
                uint32_t CallPrem = prov::InvalidFact);

  // --- Provenance hooks (single dead pointer test when Prov is null) ---

  /// True when this run records derivations.
  bool provOn() const { return PT_PROV_ACTIVE(Opts.Prov); }

  /// Interns the fact a (node, object) pair denotes, by node kind.
  uint32_t provFact(uint32_t NodeIdx, uint32_t Obj);

  /// Remembers why edge \p From -> \p To exists, keyed like EdgeDedup;
  /// must run before \c addEdge so replayed facts find the justification.
  void noteEdgeWhy(uint32_t From, uint32_t To, prov::Rule Why, uint32_t Aux);
  void noteCastEdgeWhy(uint32_t From, uint32_t To, uint32_t Aux,
                       prov::Rule Why = prov::Rule::Cast);

  /// Records the step for one fact propagated along (\p From, \p To).
  void provEdgeStep(uint32_t From, uint32_t To, uint32_t Obj, bool IsCast);

  /// Appends \p E to the call graph unless present; exact tuple dedup via
  /// a hash-headed chain over \c CallEdges (no separate key copies).
  bool insertCallEdge(const CallGraphEdge &E);

  /// Stops the run: records the reason (first one wins) and whether the
  /// fault-injection plan staged it.
  void abortRun(AbortReason Why, bool Injected = false) {
    if (Aborted)
      return;
    Aborted = true;
    Reason = Why;
    FaultInjected = Injected;
  }

  /// Amortized guard poll used from the inner dispatch/routeThrow/delta
  /// loops; aborts once the wall-clock budget expires, the cancel token
  /// trips, or (every eighth poll, the walk being O(nodes)) the memory
  /// budget is exceeded.
  bool checkBudget() {
    if (!Aborted && (++BudgetTick & 0x3ff) == 0)
      pollGuards();
    return Aborted;
  }

  /// The slow path of \c checkBudget.
  void pollGuards();

  /// Per-worklist-step fault-plan poll (called only when a step fault is
  /// armed): trips cancellation or simulated OOM at the exact step.
  void pollStepFaults();

  /// Stalls ~50us when the fault plan targets \p Rule; called from the
  /// rule sites behind a single member-bool guard.
  void slowRule(FaultRule Rule) {
    if (SlowRuleArmed && Opts.Faults.SlowRule == Rule)
      stallForFault();
  }
  void stallForFault();

  void drainWorklist();
  void processDelta(uint32_t NodeIdx);

  /// Bytes held by all persistent solver containers (sets, intern tables,
  /// dedup structures, call graph).  Everything measured only grows, so
  /// sampling at any point is a monotone lower bound and the harvest-time
  /// value is the peak.  The transient worklist is deliberately excluded:
  /// its depth depends on sampling moment, and PeakBytes must be
  /// deterministic across runs and thread counts.
  size_t memoryBytes() const;

  /// Records a heartbeat on \c Opts.Trace (caller checks it is non-null).
  void emitHeartbeat(bool Final);

  /// Amortized heartbeat poll, called once per worklist step.
  void pollHeartbeat() {
    if (!Opts.Trace)
      return;
    ++StepsSinceBeat;
    bool Due =
        Opts.HeartbeatSteps != 0 && StepsSinceBeat >= Opts.HeartbeatSteps;
    if (!Due && Opts.HeartbeatMs != 0 && (StepsSinceBeat & 0x3ff) == 0)
      Due = BeatWatch.elapsedMs() >= static_cast<double>(Opts.HeartbeatMs);
    if (Due)
      emitHeartbeat(false);
  }

  AnalysisResult harvest();

  const Program &Prog;
  ContextPolicy &Policy;
  /// Null unless the policy is a cut-shortcut family member
  /// (context/CutShortcut.h): planned store/return flows are cut and
  /// per-call-edge shortcut edges wired in dispatch()/wireCall().
  const CutShortcutPlan *CutPlan = nullptr;
  SolverOptions Opts;
  Deadline Budget;

  std::vector<Node> Nodes;
  std::vector<NodeDesc> Descs;
  FlatMap<uint32_t> VarCtxIndex;    ///< packPair(var, ctx) -> node
  FlatMap<uint32_t> FieldSlotIndex; ///< packPair(obj, fld) -> node
  FlatMap<uint32_t> StaticSlotIndex; ///< fld -> node
  FlatMap<uint32_t> ThrowSlotIndex; ///< packPair(method, ctx) -> node
  FlatSet ThrowLinkDedup;           ///< hash of (node, link)

  std::vector<HeapId> ObjHeaps;
  std::vector<HCtxId> ObjHCtxs;
  FlatMap<uint32_t> ObjIndex; ///< packPair(heap, hctx) -> dense object

  FlatSet ReachableSet; ///< packed (method, ctx)
  std::vector<std::pair<MethodId, CtxId>> ReachableList;

  /// Call-graph dedup: tuple hash -> head index into \c CallEdges, with
  /// per-edge chain links for exactness under hash collisions.
  FlatMap<uint32_t> CallEdgeHead;
  std::vector<uint32_t> CallEdgeNext;
  std::vector<CallGraphEdge> CallEdges;

  FlatSet EdgeDedup; ///< packPair(from, to)

  /// Provenance edge justifications: packPair(from, to) -> packed
  /// (aux fact << 8 | rule).  Only populated when \c Opts.Prov is set;
  /// cast edges get their own map because a plain and a cast edge can
  /// coexist between one node pair.
  FlatMap<uint64_t> EdgeWhy;
  FlatMap<uint64_t> CastEdgeWhy;
  /// ThrowLink justifications, keyed like \c ThrowLinkDedup -> call-edge
  /// fact id.
  FlatMap<uint32_t> ThrowLinkWhy;

  std::deque<uint32_t> Worklist;
  uint64_t FactCount = 0;
  uint32_t BudgetTick = 0;
  uint32_t MemPollTick = 0;
  bool Aborted = false;
  bool HasRun = false;

  AbortReason Reason = AbortReason::None;
  bool FaultInjected = false;

  /// Worklist steps taken so far.  Counted unconditionally (unlike the
  /// telemetry counters, which are all-zero without HYBRIDPT_TELEMETRY)
  /// because the fault plan's *-at-step directives and the heartbeat Step
  /// field must be deterministic in every build.
  uint64_t StepCount = 0;

  /// Cached \c Opts.Faults dispositions, hoisted out of the hot loops.
  bool StepFaultArmed = false;
  bool SlowRuleArmed = false;

  /// Per-solver telemetry — never shared, so runs are bit-identical at any
  /// thread count.  All-zero when HYBRIDPT_TELEMETRY is off.
  telemetry::SolverCounters Counters;
  telemetry::SolverCounters LastBeat; ///< Snapshot at the last heartbeat.
  uint64_t StepsSinceBeat = 0;
  Stopwatch BeatWatch;
};

} // namespace pt

#endif // HYBRIDPT_PTA_SOLVER_H
