//===- pta/Clients.cpp ----------------------------------------------------------===//
//
// Part of the hybridpt project (PLDI 2013 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pta/Clients.h"

#include "ir/Program.h"
#include "pta/AnalysisResult.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace pt;

std::vector<DevirtSite> pt::devirtualizeCalls(const AnalysisResult &Result) {
  const Program &Prog = Result.program();

  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> TargetsPerSite;
  for (const CallGraphEdge &E : Result.CallEdges)
    if (!Prog.invoke(E.Invo).IsStatic)
      TargetsPerSite[E.Invo.index()].insert(E.Callee.index());

  std::vector<DevirtSite> Rows;
  for (MethodId M : Result.reachableMethods()) {
    for (InvokeId Inv : Prog.method(M).Invokes) {
      if (Prog.invoke(Inv).IsStatic)
        continue;
      DevirtSite Row;
      Row.Invo = Inv;
      auto It = TargetsPerSite.find(Inv.index());
      if (It == TargetsPerSite.end() || It->second.empty()) {
        Row.Verdict = DevirtVerdict::Dead;
      } else {
        for (uint32_t T : It->second)
          Row.Targets.push_back(MethodId(T));
        std::sort(Row.Targets.begin(), Row.Targets.end());
        Row.Verdict = Row.Targets.size() == 1 ? DevirtVerdict::Monomorphic
                                              : DevirtVerdict::Polymorphic;
      }
      Rows.push_back(std::move(Row));
    }
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const DevirtSite &A, const DevirtSite &B) {
              return A.Invo < B.Invo;
            });
  return Rows;
}

std::vector<CastCheck> pt::checkCasts(const AnalysisResult &Result) {
  const Program &Prog = Result.program();

  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> HeapsPerVar;
  for (const auto &E : Result.VarFacts) {
    auto &Set = HeapsPerVar[E.Var.index()];
    for (uint32_t Obj : E.Objs)
      Set.insert(Result.objHeap(Obj).index());
  }

  std::vector<CastCheck> Rows;
  for (MethodId M : Result.reachableMethods()) {
    for (const CastInstr &C : Prog.method(M).Casts) {
      CastCheck Row;
      Row.Site = C.Site;
      auto It = HeapsPerVar.find(C.From.index());
      if (It == HeapsPerVar.end() || It->second.empty()) {
        Row.Verdict = CastVerdict::Unreached;
      } else {
        for (uint32_t HeapIdx : It->second)
          if (!Prog.isSubtype(Prog.heap(HeapId(HeapIdx)).Type, C.Target))
            Row.Offenders.push_back(HeapId(HeapIdx));
        std::sort(Row.Offenders.begin(), Row.Offenders.end());
        Row.Verdict = Row.Offenders.empty() ? CastVerdict::Safe
                                            : CastVerdict::MayFail;
      }
      Rows.push_back(std::move(Row));
    }
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const CastCheck &A, const CastCheck &B) {
              return A.Site < B.Site;
            });
  return Rows;
}
